(* Tests for the graph substrate: bipartite graphs, matchings,
   Hopcroft-Karp, the tiered-weight matching engine, Dinic max-flow and
   the alternating-path decomposition, each validated against brute-force
   oracles on randomly generated small graphs. *)

module Rng = Prelude.Rng
module Bipartite = Graph.Bipartite
module Matching = Graph.Matching
module Hopcroft_karp = Graph.Hopcroft_karp
module Lexvec = Graph.Lexvec
module Tiered = Graph.Tiered
module Maxflow = Graph.Maxflow
module Brute = Graph.Brute
module Altpath = Graph.Altpath

let check = Alcotest.check
let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Random small bipartite graph described by (n_left, n_right, edge list);
   the generator deduplicates so edge counts stay meaningful. *)
let graph_gen =
  QCheck.Gen.(
    int_range 1 6 >>= fun nl ->
    int_range 1 6 >>= fun nr ->
    int_range 0 12 >>= fun ne ->
    list_size (return ne) (pair (int_range 0 (nl - 1)) (int_range 0 (nr - 1)))
    >>= fun edges ->
    return (nl, nr, List.sort_uniq compare edges))

let graph_arb =
  QCheck.make graph_gen ~print:(fun (nl, nr, es) ->
      Printf.sprintf "nl=%d nr=%d edges=[%s]" nl nr
        (String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) es)))

let build (nl, nr, edges) =
  let g = Bipartite.create ~n_left:nl ~n_right:nr in
  List.iter (fun (u, v) -> ignore (Bipartite.add_edge g ~left:u ~right:v)) edges;
  g

(* ------------------------------------------------------------------ *)
(* Bipartite *)

let test_bipartite_basics () =
  let g = Bipartite.create ~n_left:3 ~n_right:2 in
  let e0 = Bipartite.add_edge g ~left:0 ~right:1 in
  let e1 = Bipartite.add_edge g ~left:2 ~right:0 in
  check Alcotest.int "edge ids sequential" 0 e0;
  check Alcotest.int "edge ids sequential" 1 e1;
  check Alcotest.int "n_edges" 2 (Bipartite.n_edges g);
  check Alcotest.int "endpoint" 2 (Bipartite.edge_left g e1);
  check Alcotest.int "endpoint" 0 (Bipartite.edge_right g e1);
  check Alcotest.int "degree" 1 (Bipartite.degree_left g 0);
  check Alcotest.int "degree" 0 (Bipartite.degree_left g 1);
  check Alcotest.bool "has_edge" true (Bipartite.has_edge g ~left:0 ~right:1);
  check Alcotest.bool "has_edge" false (Bipartite.has_edge g ~left:0 ~right:0)

let test_bipartite_bounds () =
  let g = Bipartite.create ~n_left:1 ~n_right:1 in
  Alcotest.check_raises "left oob"
    (Invalid_argument "Bipartite.add_edge: left endpoint out of range")
    (fun () -> ignore (Bipartite.add_edge g ~left:1 ~right:0));
  Alcotest.check_raises "right oob"
    (Invalid_argument "Bipartite.add_edge: right endpoint out of range")
    (fun () -> ignore (Bipartite.add_edge g ~left:0 ~right:(-1)))

let test_bipartite_iter_edges () =
  let g = build (3, 3, [ (0, 0); (1, 1); (2, 2) ]) in
  let seen = ref [] in
  Bipartite.iter_edges g (fun id ~left ~right ->
      seen := (id, left, right) :: !seen);
  check Alcotest.int "three edges" 3 (List.length !seen)

(* ------------------------------------------------------------------ *)
(* Matching *)

let test_matching_use_drop () =
  let g = build (2, 2, [ (0, 0); (0, 1); (1, 1) ]) in
  let m = Matching.empty g in
  Matching.use_edge g m 0;
  check Alcotest.int "size" 1 (Matching.size m);
  check Alcotest.bool "valid" true (Matching.is_valid g m);
  Alcotest.check_raises "double use"
    (Invalid_argument "Matching.use_edge: left endpoint already matched")
    (fun () -> Matching.use_edge g m 1);
  Matching.drop_left m 0;
  check Alcotest.int "size after drop" 0 (Matching.size m);
  Matching.use_edge g m 1 (* now legal *)

let test_matching_greedy_maximal () =
  let g = build (3, 3, [ (0, 0); (0, 1); (1, 0); (2, 2) ]) in
  let m = Matching.greedy_maximal g in
  check Alcotest.bool "valid" true (Matching.is_valid g m);
  check Alcotest.bool "maximal" true (Matching.is_maximal g m)

let prop_greedy_maximal =
  qtest "greedy matching is always valid and maximal" graph_arb (fun spec ->
      let g = build spec in
      let m = Matching.greedy_maximal g in
      Matching.is_valid g m && Matching.is_maximal g m)

let test_matching_augment_along () =
  (* path: 0-0 (unmatched), 1-0 (matched), 1-1 (unmatched) *)
  let g = build (2, 2, [ (0, 0); (1, 0); (1, 1) ]) in
  let m = Matching.empty g in
  Matching.use_edge g m 1;
  Matching.augment_along g m [ 0; 1; 2 ];
  check Alcotest.int "size 2" 2 (Matching.size m);
  check Alcotest.bool "valid" true (Matching.is_valid g m);
  check Alcotest.int "0 -> slot 0" 0 m.Matching.left_to.(0);
  check Alcotest.int "1 -> slot 1" 1 m.Matching.left_to.(1)

let test_matching_augment_rejects_nonsense () =
  let g = build (2, 2, [ (0, 0); (1, 0); (1, 1) ]) in
  let m = Matching.empty g in
  Matching.use_edge g m 1;
  Alcotest.check_raises "even-length path"
    (Invalid_argument "Matching.augment_along: path does not alternate")
    (fun () -> Matching.augment_along g m [ 0; 2 ])

(* ------------------------------------------------------------------ *)
(* Hopcroft-Karp *)

let test_hk_simple () =
  (* perfect matching on a 3x3 cycle-ish graph *)
  let g = build (3, 3, [ (0, 0); (0, 1); (1, 1); (1, 2); (2, 2); (2, 0) ]) in
  let m = Hopcroft_karp.solve g in
  check Alcotest.int "perfect" 3 (Matching.size m);
  check Alcotest.bool "valid" true (Matching.is_valid g m)

let test_hk_star () =
  (* all left vertices want the same right vertex *)
  let g = build (4, 1, [ (0, 0); (1, 0); (2, 0); (3, 0) ]) in
  check Alcotest.int "only one fits" 1 (Hopcroft_karp.max_matching_size g)

let test_hk_empty () =
  let g = Bipartite.create ~n_left:3 ~n_right:3 in
  check Alcotest.int "no edges" 0 (Hopcroft_karp.max_matching_size g)

let prop_hk_matches_brute =
  qtest ~count:500 "Hopcroft-Karp size = brute force" graph_arb (fun spec ->
      let g = build spec in
      Hopcroft_karp.max_matching_size g = Brute.max_matching_size g)

let prop_hk_valid =
  qtest "Hopcroft-Karp output is a valid matching" graph_arb (fun spec ->
      let g = build spec in
      Matching.is_valid g (Hopcroft_karp.solve g))

let prop_hk_warm_start =
  qtest "solve_from greedy equals solve from empty" graph_arb (fun spec ->
      let g = build spec in
      let cold = Hopcroft_karp.solve g in
      let warm = Hopcroft_karp.solve_from g (Matching.greedy_maximal g) in
      Matching.size cold = Matching.size warm && Matching.is_valid g warm)

let prop_koenig_certificate =
  qtest ~count:500 "Koenig cover certifies every maximum matching"
    graph_arb (fun spec ->
        let g = build spec in
        let m = Hopcroft_karp.solve g in
        Hopcroft_karp.is_koenig_certificate g m)

let prop_koenig_rejects_non_maximum =
  qtest ~count:300 "Koenig certificate fails on smaller matchings"
    graph_arb (fun spec ->
        let g = build spec in
        let best = Hopcroft_karp.max_matching_size g in
        let greedy = Matching.greedy_maximal g in
        (* if greedy happens to be maximum the certificate must hold;
           if it is strictly smaller the size condition must fail *)
        if Matching.size greedy = best then
          Hopcroft_karp.is_koenig_certificate g greedy
        else not (Hopcroft_karp.is_koenig_certificate g greedy))

let test_koenig_cover_contents () =
  (* path: l0-r0, l1-r0, l1-r1: maximum matching size 2, cover {l1, r0}
     or equivalent of size 2 *)
  let g = build (2, 2, [ (0, 0); (1, 0); (1, 1) ]) in
  let m = Hopcroft_karp.solve g in
  let lefts, rights = Hopcroft_karp.min_vertex_cover g m in
  check Alcotest.int "cover size = matching size" 2
    (List.length lefts + List.length rights);
  check Alcotest.bool "certificate" true
    (Hopcroft_karp.is_koenig_certificate g m)

(* ------------------------------------------------------------------ *)
(* Lexvec *)

let test_lexvec_order () =
  check Alcotest.bool "(1,0) > (0,9)" true
    Lexvec.([| 1; 0 |] > [| 0; 9 |]);
  check Alcotest.bool "(0,1) < (1,-5)" true
    Lexvec.([| 0; 1 |] < [| 1; -5 |]);
  check Alcotest.int "equal" 0 (Lexvec.compare [| 2; 3 |] [| 2; 3 |])

let test_lexvec_group_ops () =
  let a = [| 1; -2; 3 |] and b = [| 0; 5; -1 |] in
  check Alcotest.(array int) "add" [| 1; 3; 2 |] (Lexvec.add a b);
  check Alcotest.(array int) "sub" [| 1; -7; 4 |] (Lexvec.sub a b);
  check Alcotest.(array int) "neg" [| -1; 2; -3 |] (Lexvec.neg a);
  check Alcotest.bool "pos" true (Lexvec.is_positive [| 0; 0; 1 |]);
  check Alcotest.bool "neg vec" true (Lexvec.is_negative [| 0; -1; 99 |]);
  check Alcotest.string "to_string" "(1,-2,3)" (Lexvec.to_string a)

let test_lexvec_len_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Lexvec.add: length mismatch") (fun () ->
        ignore (Lexvec.add [| 1 |] [| 1; 2 |]))

let prop_lexvec_total_order =
  let vec = QCheck.(list_of_size (QCheck.Gen.return 3) (int_range (-5) 5)) in
  qtest "lexicographic order is transitive and antisymmetric"
    QCheck.(triple vec vec vec)
    (fun (a, b, c) ->
       let a = Array.of_list a and b = Array.of_list b and c = Array.of_list c in
       let t =
         if Lexvec.compare a b <= 0 && Lexvec.compare b c <= 0 then
           Lexvec.compare a c <= 0
         else true
       in
       let anti = (Lexvec.compare a b = 0) = (a = b) in
       t && anti)

(* ------------------------------------------------------------------ *)
(* Tiered matching *)

(* weights: random per edge in [-2, 5] on 2 tiers; the brute oracle is
   the ground truth for the achieved maximum total weight *)
let weights_gen ne =
  QCheck.Gen.(list_size (return ne)
                (pair (int_range (-2) 5) (int_range (-2) 5)))

let tiered_case_gen =
  QCheck.Gen.(
    graph_gen >>= fun (nl, nr, edges) ->
    weights_gen (List.length edges) >>= fun ws ->
    return ((nl, nr, edges), ws))

let tiered_arb =
  QCheck.make tiered_case_gen ~print:(fun ((nl, nr, es), ws) ->
      Printf.sprintf "nl=%d nr=%d edges=[%s] w=[%s]" nl nr
        (String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) es))
        (String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) ws)))

let prop_tiered_matches_brute =
  qtest ~count:500 "tiered matching weight = brute-force optimum" tiered_arb
    (fun (spec, ws) ->
       let g = build spec in
       let warr = Array.of_list ws in
       let weight id =
         let a, b = warr.(id) in
         [| a; b |]
       in
       let m = Tiered.solve g ~weight in
       Matching.is_valid g m
       && Lexvec.equal
            (Tiered.weight_of g ~weight m)
            (Brute.max_weight g ~weight))

let prop_tiered_certificate =
  qtest ~count:300 "tiered matching passes its optimality certificate"
    tiered_arb (fun (spec, ws) ->
        let g = build spec in
        let warr = Array.of_list ws in
        let weight id =
          let a, b = warr.(id) in
          [| a; b |]
        in
        let m = Tiered.solve g ~weight in
        Tiered.is_max_weight_certificate g ~weight m)

let prop_tiered_three_tiers =
  (* deeper tier stacks (the balance strategies use d+3) must stay
     exact; weights include negatives in the lowest tier like the
     adversarial biases do *)
  let case_gen =
    QCheck.Gen.(
      graph_gen >>= fun (nl, nr, edges) ->
      list_size (return (List.length edges))
        (triple (int_range 0 2) (int_range (-1) 2) (int_range (-3) 3))
      >>= fun ws -> return ((nl, nr, edges), ws))
  in
  qtest ~count:400 "tiered matching exact with three tiers"
    (QCheck.make case_gen ~print:(fun ((nl, nr, es), _) ->
         Printf.sprintf "nl=%d nr=%d edges=%d" nl nr (List.length es)))
    (fun (spec, ws) ->
       let g = build spec in
       let warr = Array.of_list ws in
       let weight id =
         let a, b, c = warr.(id) in
         [| a; b; c |]
       in
       let m = Tiered.solve g ~weight in
       Lexvec.equal
         (Tiered.weight_of g ~weight m)
         (Brute.max_weight g ~weight))

let prop_altpath_two_maximum_matchings =
  (* two maximum matchings differ only by even paths and cycles *)
  qtest ~count:300 "no augmenting paths between two maximum matchings"
    graph_arb (fun spec ->
        let g = build spec in
        let m1 = Hopcroft_karp.solve g in
        (* a second maximum matching from a different start *)
        let m2 = Hopcroft_karp.solve_from g (Matching.greedy_maximal g) in
        List.for_all
          (fun c ->
             match c.Altpath.kind with
             | Altpath.Augmenting_first | Altpath.Augmenting_second -> false
             | Altpath.Even_path | Altpath.Cycle -> true)
          (Altpath.decompose g m1 m2))

let prop_tiered_positive_weights_max_cardinality =
  qtest ~count:300
    "all-positive top tier forces maximum cardinality" graph_arb
    (fun spec ->
       let g = build spec in
       let weight _ = [| 1; 0 |] in
       let m = Tiered.solve g ~weight in
       Matching.size m = Brute.max_matching_size g)

let test_tiered_prefers_top_tier () =
  (* two left, one right; edge 0 wins tier 0, edge 1 wins tier 1 *)
  let g = build (2, 1, [ (0, 0); (1, 0) ]) in
  let weight = function 0 -> [| 1; 0 |] | _ -> [| 0; 9 |] in
  let m = Tiered.solve g ~weight in
  check Alcotest.int "edge 0 chosen" 0 m.Matching.left_to.(0);
  check Alcotest.int "left 1 free" (-1) m.Matching.left_to.(1)

let test_tiered_bias_tier_steers_ties () =
  (* square: both perfect matchings have equal cardinality; bias picks
     the 'crossed' one *)
  let g = build (2, 2, [ (0, 0); (0, 1); (1, 0); (1, 1) ]) in
  let weight = function
    | 1 | 2 -> [| 1; 1 |] (* crossed edges carry bias *)
    | _ -> [| 1; 0 |]
  in
  let m = Tiered.solve g ~weight in
  check Alcotest.int "0 -> 1" 1 m.Matching.left_to.(0);
  check Alcotest.int "1 -> 0" 0 m.Matching.left_to.(1)

let test_tiered_skips_negative_gain () =
  (* single edge with negative weight: empty matching is optimal *)
  let g = build (1, 1, [ (0, 0) ]) in
  let m = Tiered.solve g ~weight:(fun _ -> [| -1 |]) in
  check Alcotest.int "empty" 0 (Matching.size m)

let test_tiered_weight_length_mismatch () =
  let g = build (1, 2, [ (0, 0); (0, 1) ]) in
  let weight = function 0 -> [| 1 |] | _ -> [| 1; 2 |] in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Tiered: edge 1 weight length 2, expected 1")
    (fun () -> ignore (Tiered.solve g ~weight))

(* ------------------------------------------------------------------ *)
(* Maxflow *)

let test_maxflow_simple () =
  (* source 0 -> {1,2} -> sink 3 *)
  let f = Maxflow.create ~n_nodes:4 in
  ignore (Maxflow.add_edge f ~src:0 ~dst:1 ~cap:3);
  ignore (Maxflow.add_edge f ~src:0 ~dst:2 ~cap:2);
  ignore (Maxflow.add_edge f ~src:1 ~dst:3 ~cap:2);
  ignore (Maxflow.add_edge f ~src:2 ~dst:3 ~cap:4);
  check Alcotest.int "maxflow" 4 (Maxflow.max_flow f ~source:0 ~sink:3)

let test_maxflow_bottleneck () =
  let f = Maxflow.create ~n_nodes:3 in
  ignore (Maxflow.add_edge f ~src:0 ~dst:1 ~cap:100);
  let mid = Maxflow.add_edge f ~src:1 ~dst:2 ~cap:7 in
  check Alcotest.int "bottleneck" 7 (Maxflow.max_flow f ~source:0 ~sink:2);
  check Alcotest.int "flow on arc" 7 (Maxflow.flow_on f mid)

let test_maxflow_min_cut () =
  let f = Maxflow.create ~n_nodes:4 in
  ignore (Maxflow.add_edge f ~src:0 ~dst:1 ~cap:3);
  ignore (Maxflow.add_edge f ~src:0 ~dst:2 ~cap:2);
  ignore (Maxflow.add_edge f ~src:1 ~dst:3 ~cap:2);
  ignore (Maxflow.add_edge f ~src:2 ~dst:3 ~cap:4);
  let flow = Maxflow.max_flow f ~source:0 ~sink:3 in
  check Alcotest.bool "cut certificate" true
    (Maxflow.is_cut_certificate f ~source:0 ~sink:3 ~flow);
  let cut = Maxflow.min_cut f ~source:0 in
  check Alcotest.bool "source in cut" true (List.mem 0 cut);
  check Alcotest.bool "sink not in cut" false (List.mem 3 cut)

let prop_maxflow_cut_certificate =
  qtest ~count:300 "min-cut certificate holds on random unit networks"
    graph_arb (fun (nl, nr, edges) ->
        let f = Maxflow.create ~n_nodes:(nl + nr + 2) in
        let source = nl + nr in
        let sink = source + 1 in
        for u = 0 to nl - 1 do
          ignore (Maxflow.add_edge f ~src:source ~dst:u ~cap:1)
        done;
        for v = 0 to nr - 1 do
          ignore (Maxflow.add_edge f ~src:(nl + v) ~dst:sink ~cap:1)
        done;
        List.iter
          (fun (u, v) ->
             ignore (Maxflow.add_edge f ~src:u ~dst:(nl + v) ~cap:1))
          edges;
        let flow = Maxflow.max_flow f ~source ~sink in
        Maxflow.is_cut_certificate f ~source ~sink ~flow)

let test_maxflow_disconnected () =
  let f = Maxflow.create ~n_nodes:4 in
  ignore (Maxflow.add_edge f ~src:0 ~dst:1 ~cap:5);
  ignore (Maxflow.add_edge f ~src:2 ~dst:3 ~cap:5);
  check Alcotest.int "no path" 0 (Maxflow.max_flow f ~source:0 ~sink:3)

let prop_maxflow_equals_matching =
  (* unit-capacity bipartite flow = maximum matching *)
  qtest ~count:400 "unit bipartite max-flow = max matching" graph_arb
    (fun (nl, nr, edges) ->
       let g = build (nl, nr, edges) in
       let f = Maxflow.create ~n_nodes:(nl + nr + 2) in
       let source = nl + nr and sink = nl + nr + 1 in
       for u = 0 to nl - 1 do
         ignore (Maxflow.add_edge f ~src:source ~dst:u ~cap:1)
       done;
       for v = 0 to nr - 1 do
         ignore (Maxflow.add_edge f ~src:(nl + v) ~dst:sink ~cap:1)
       done;
       List.iter
         (fun (u, v) -> ignore (Maxflow.add_edge f ~src:u ~dst:(nl + v) ~cap:1))
         edges;
       Maxflow.max_flow f ~source ~sink = Brute.max_matching_size g)

let prop_maxflow_grouping_invariance =
  (* duplicating a left vertex k times with unit capacities equals giving
     it capacity k: the grouped-OPT trick used by lib/offline *)
  qtest ~count:200 "grouped capacity = expanded duplicates"
    QCheck.(pair graph_arb (int_range 1 3))
    (fun ((nl, nr, edges), k) ->
       (* expanded: k copies of each left vertex *)
       let fe = Maxflow.create ~n_nodes:((nl * k) + nr + 2) in
       let source = (nl * k) + nr in
       let sink = source + 1 in
       for u = 0 to (nl * k) - 1 do
         ignore (Maxflow.add_edge fe ~src:source ~dst:u ~cap:1)
       done;
       for v = 0 to nr - 1 do
         ignore (Maxflow.add_edge fe ~src:((nl * k) + v) ~dst:sink ~cap:1)
       done;
       List.iter
         (fun (u, v) ->
            for c = 0 to k - 1 do
              ignore
                (Maxflow.add_edge fe ~src:((u * k) + c) ~dst:((nl * k) + v)
                   ~cap:1)
            done)
         edges;
       let expanded = Maxflow.max_flow fe ~source ~sink in
       (* grouped: one node per left vertex with source capacity k *)
       let fg = Maxflow.create ~n_nodes:(nl + nr + 2) in
       let source = nl + nr and sink = nl + nr + 1 in
       for u = 0 to nl - 1 do
         ignore (Maxflow.add_edge fg ~src:source ~dst:u ~cap:k)
       done;
       for v = 0 to nr - 1 do
         ignore (Maxflow.add_edge fg ~src:(nl + v) ~dst:sink ~cap:1)
       done;
       List.iter
         (fun (u, v) -> ignore (Maxflow.add_edge fg ~src:u ~dst:(nl + v) ~cap:1))
         edges;
       Maxflow.max_flow fg ~source ~sink = expanded)

(* ------------------------------------------------------------------ *)
(* Altpath *)

let test_altpath_single_augmenting () =
  (* M1 empty, M2 = {0-0}: one augmenting path of order 1 *)
  let g = build (1, 1, [ (0, 0) ]) in
  let m1 = Matching.empty g in
  let m2 = Matching.empty g in
  Matching.use_edge g m2 0;
  (match Altpath.decompose g m1 m2 with
   | [ c ] ->
     check Alcotest.bool "augmenting for first" true
       (c.Altpath.kind = Altpath.Augmenting_first);
     check Alcotest.int "order 1" 1 (Altpath.order c)
   | other ->
     Alcotest.failf "expected one component, got %d" (List.length other));
  check Alcotest.(list (pair int int)) "census" [ (1, 1) ]
    (Altpath.census g m1 m2)

let test_altpath_order2 () =
  (* M1 = {r1-s0}; M2 = {r0-s0, r1-s1}: augmenting path of order 2 *)
  let g = build (2, 2, [ (0, 0); (1, 0); (1, 1) ]) in
  let m1 = Matching.empty g in
  Matching.use_edge g m1 1;
  let m2 = Matching.empty g in
  Matching.use_edge g m2 0;
  Matching.use_edge g m2 2;
  check Alcotest.(list (pair int int)) "one order-2 path" [ (2, 1) ]
    (Altpath.census g m1 m2)

let test_altpath_cycle () =
  (* square with opposite perfect matchings: one cycle, no augmenting *)
  let g = build (2, 2, [ (0, 0); (0, 1); (1, 0); (1, 1) ]) in
  let m1 = Matching.empty g in
  Matching.use_edge g m1 0;
  Matching.use_edge g m1 3;
  let m2 = Matching.empty g in
  Matching.use_edge g m2 1;
  Matching.use_edge g m2 2;
  (match Altpath.decompose g m1 m2 with
   | [ c ] ->
     check Alcotest.bool "cycle" true (c.Altpath.kind = Altpath.Cycle);
     check Alcotest.int "4 edges" 4 (List.length c.Altpath.edges)
   | other ->
     Alcotest.failf "expected one component, got %d" (List.length other));
  check Alcotest.(list (pair int int)) "no augmenting paths" []
    (Altpath.census g m1 m2)

let test_altpath_identical_matchings () =
  let g = build (2, 2, [ (0, 0); (1, 1) ]) in
  let m = Matching.greedy_maximal g in
  check Alcotest.(list (pair int int)) "empty census" []
    (Altpath.census g m m);
  check Alcotest.int "no components" 0 (List.length (Altpath.decompose g m m))

let prop_altpath_counts_gap =
  (* |OPT| - |ALG| = number of augmenting-for-ALG components when ALG is
     maximal (no order-1 freebies needed); in general the identity holds
     for any two matchings *)
  qtest ~count:400 "size gap = #aug_first - #aug_second" graph_arb
    (fun spec ->
       let g = build spec in
       let m1 = Matching.greedy_maximal g in
       let m2 = Hopcroft_karp.solve g in
       let comps = Altpath.decompose g m1 m2 in
       let aug1 =
         List.length
           (List.filter (fun c -> c.Altpath.kind = Altpath.Augmenting_first)
              comps)
       in
       let aug2 =
         List.length
           (List.filter (fun c -> c.Altpath.kind = Altpath.Augmenting_second)
              comps)
       in
       Matching.size m2 - Matching.size m1 = aug1 - aug2)

let prop_altpath_edges_partition_symdiff =
  qtest ~count:300 "components exactly cover the symmetric difference"
    graph_arb (fun spec ->
        let g = build spec in
        let m1 = Matching.greedy_maximal g in
        let m2 = Hopcroft_karp.solve g in
        let comps = Altpath.decompose g m1 m2 in
        let covered = Hashtbl.create 16 in
        List.iter
          (fun c ->
             List.iter
               (fun id ->
                  if Hashtbl.mem covered id then failwith "duplicate edge";
                  Hashtbl.replace covered id ())
               c.Altpath.edges)
          comps;
        let expected = ref 0 in
        Bipartite.iter_edges g (fun id ~left ~right:_ ->
            let in1 = m1.Matching.left_edge.(left) = id in
            let in2 = m2.Matching.left_edge.(left) = id in
            if in1 <> in2 then begin
              incr expected;
              if not (Hashtbl.mem covered id) then failwith "missing edge"
            end);
        Hashtbl.length covered = !expected)

(* ------------------------------------------------------------------ *)
(* growing graphs and incremental augmentation *)

let test_bipartite_append_vertices () =
  let g = Bipartite.create ~n_left:0 ~n_right:0 in
  check Alcotest.int "first left" 0 (Bipartite.add_left_vertex g);
  check Alcotest.int "first right" 0 (Bipartite.add_right_vertex g);
  check Alcotest.int "second left" 1 (Bipartite.add_left_vertex g);
  let id = Bipartite.add_edge g ~left:1 ~right:0 in
  check Alcotest.int "edge endpoints" 1 (Bipartite.edge_left g id);
  check Alcotest.int "degree after append" 1 (Bipartite.degree_right g 0);
  (* old ids survive growth *)
  for _ = 1 to 100 do ignore (Bipartite.add_right_vertex g : int) done;
  check Alcotest.int "edge survives growth" 0 (Bipartite.edge_right g id);
  check Alcotest.int "n_right" 101 (Bipartite.n_right g);
  check Alcotest.bool "appended vertex isolated" true
    (Bipartite.degree_right g 100 = 0)

let test_matching_extend () =
  let g = Bipartite.create ~n_left:1 ~n_right:1 in
  let id = Bipartite.add_edge g ~left:0 ~right:0 in
  let m = Matching.empty g in
  Matching.use_edge g m id;
  ignore (Bipartite.add_left_vertex g : int);
  ignore (Bipartite.add_right_vertex g : int);
  let m' = Matching.extend g m in
  check Alcotest.bool "still valid" true (Matching.is_valid g m');
  check Alcotest.int "size preserved" 1 (Matching.size m');
  check Alcotest.bool "new left free" false (Matching.is_matched_left m' 1);
  check Alcotest.bool "new right free" false (Matching.is_matched_right m' 1);
  (* shrinking is rejected *)
  let small = Bipartite.create ~n_left:0 ~n_right:0 in
  (match Matching.extend small m with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected Invalid_argument")

let test_augment_from_scratch () =
  (* empty graph, grown column by column like the paper-graph stream *)
  let g = Bipartite.create ~n_left:0 ~n_right:0 in
  let a = Graph.Augment.create g in
  check Alcotest.int "empty" 0 (Graph.Augment.size a);
  let u0 = Bipartite.add_left_vertex g and u1 = Bipartite.add_left_vertex g in
  let r0 = Bipartite.add_right_vertex g in
  ignore (Bipartite.add_edge g ~left:u0 ~right:r0);
  ignore (Bipartite.add_edge g ~left:u1 ~right:r0);
  check Alcotest.int "one slot" 1 (Graph.Augment.augment_new_rights a ~first:r0);
  check Alcotest.int "size 1" 1 (Graph.Augment.size a);
  (* the second column forces a rerouting augmentation *)
  let r1 = Bipartite.add_right_vertex g in
  ignore (Bipartite.add_edge g ~left:u0 ~right:r1);
  check Alcotest.int "reroute" 1 (Graph.Augment.augment_new_rights a ~first:r1);
  check Alcotest.int "size 2" 2 (Graph.Augment.size a);
  let m = Graph.Augment.matching a in
  check Alcotest.bool "valid" true (Matching.is_valid g m);
  check Alcotest.bool "certified" true (Hopcroft_karp.is_koenig_certificate g m)

let test_augment_on_populated_graph () =
  let g = build (3, 3, [ (0, 0); (1, 0); (1, 1); (2, 2) ]) in
  let a = Graph.Augment.create g in
  check Alcotest.int "initial solve" (Hopcroft_karp.max_matching_size g)
    (Graph.Augment.size a);
  check Alcotest.bool "matched right is a no-op" false
    (Graph.Augment.augment_from_right a 0);
  (match Graph.Augment.augment_from_right a 99 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected Invalid_argument")

(* Random growth scripts obeying the append discipline: each step adds
   some vertices and only edges incident to the step's new right
   vertices.  After every commit the incremental size must equal a
   from-scratch Hopcroft-Karp solve (itself pinned to Brute above). *)
let growth_arb =
  QCheck.make
    QCheck.Gen.(
      int_range 1 6 >>= fun steps ->
      int_range 0 10_000 >>= fun seed -> return (steps, seed))
    ~print:(fun (steps, seed) -> Printf.sprintf "steps=%d seed=%d" steps seed)

let prop_augment_tracks_hopcroft_karp =
  qtest ~count:300 "incremental augmentation = from-scratch Hopcroft-Karp"
    growth_arb
    (fun (steps, seed) ->
       let rng = Rng.create ~seed in
       let g = Bipartite.create ~n_left:0 ~n_right:0 in
       let a = Graph.Augment.create g in
       let ok = ref true in
       for _ = 1 to steps do
         for _ = 1 to Rng.int rng 3 do
           ignore (Bipartite.add_left_vertex g : int)
         done;
         let first = Bipartite.n_right g in
         for _ = 1 to 1 + Rng.int rng 3 do
           ignore (Bipartite.add_right_vertex g : int)
         done;
         let nl = Bipartite.n_left g and nr = Bipartite.n_right g in
         if nl > 0 then
           for _ = 1 to Rng.int rng 5 do
             ignore
               (Bipartite.add_edge g ~left:(Rng.int rng nl)
                  ~right:(first + Rng.int rng (nr - first)))
           done;
         ignore (Graph.Augment.augment_new_rights a ~first : int);
         let m = Graph.Augment.matching a in
         if
           Graph.Augment.size a <> Hopcroft_karp.max_matching_size g
           || not (Matching.is_valid g m)
           || Matching.size m <> Graph.Augment.size a
         then ok := false
       done;
       !ok)

let () =
  Alcotest.run "graph"
    [
      ( "bipartite",
        [
          Alcotest.test_case "basics" `Quick test_bipartite_basics;
          Alcotest.test_case "bounds" `Quick test_bipartite_bounds;
          Alcotest.test_case "iter_edges" `Quick test_bipartite_iter_edges;
          Alcotest.test_case "append vertices" `Quick
            test_bipartite_append_vertices;
        ] );
      ( "augment",
        [
          Alcotest.test_case "matching extend" `Quick test_matching_extend;
          Alcotest.test_case "from scratch" `Quick test_augment_from_scratch;
          Alcotest.test_case "populated graph" `Quick
            test_augment_on_populated_graph;
          prop_augment_tracks_hopcroft_karp;
        ] );
      ( "matching",
        [
          Alcotest.test_case "use/drop" `Quick test_matching_use_drop;
          Alcotest.test_case "greedy maximal" `Quick
            test_matching_greedy_maximal;
          Alcotest.test_case "augment_along" `Quick test_matching_augment_along;
          Alcotest.test_case "augment rejects nonsense" `Quick
            test_matching_augment_rejects_nonsense;
          prop_greedy_maximal;
        ] );
      ( "hopcroft_karp",
        [
          Alcotest.test_case "simple" `Quick test_hk_simple;
          Alcotest.test_case "star" `Quick test_hk_star;
          Alcotest.test_case "empty" `Quick test_hk_empty;
          Alcotest.test_case "koenig cover contents" `Quick
            test_koenig_cover_contents;
          prop_hk_matches_brute;
          prop_hk_valid;
          prop_hk_warm_start;
          prop_koenig_certificate;
          prop_koenig_rejects_non_maximum;
        ] );
      ( "lexvec",
        [
          Alcotest.test_case "order" `Quick test_lexvec_order;
          Alcotest.test_case "group ops" `Quick test_lexvec_group_ops;
          Alcotest.test_case "length mismatch" `Quick test_lexvec_len_mismatch;
          prop_lexvec_total_order;
        ] );
      ( "tiered",
        [
          Alcotest.test_case "prefers top tier" `Quick
            test_tiered_prefers_top_tier;
          Alcotest.test_case "bias steers ties" `Quick
            test_tiered_bias_tier_steers_ties;
          Alcotest.test_case "skips negative gain" `Quick
            test_tiered_skips_negative_gain;
          Alcotest.test_case "weight length mismatch" `Quick
            test_tiered_weight_length_mismatch;
          prop_tiered_matches_brute;
          prop_tiered_certificate;
          prop_tiered_three_tiers;
          prop_tiered_positive_weights_max_cardinality;
        ] );
      ( "maxflow",
        [
          Alcotest.test_case "simple" `Quick test_maxflow_simple;
          Alcotest.test_case "bottleneck" `Quick test_maxflow_bottleneck;
          Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
          Alcotest.test_case "min cut" `Quick test_maxflow_min_cut;
          prop_maxflow_equals_matching;
          prop_maxflow_grouping_invariance;
          prop_maxflow_cut_certificate;
        ] );
      ( "altpath",
        [
          Alcotest.test_case "single augmenting" `Quick
            test_altpath_single_augmenting;
          Alcotest.test_case "order 2" `Quick test_altpath_order2;
          Alcotest.test_case "cycle" `Quick test_altpath_cycle;
          Alcotest.test_case "identical matchings" `Quick
            test_altpath_identical_matchings;
          prop_altpath_counts_gap;
          prop_altpath_edges_partition_symdiff;
          prop_altpath_two_maximum_matchings;
        ] );
    ]
