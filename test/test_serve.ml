(* Tests for the live scheduling service: wire protocol round-trips,
   the bounded channel, and end-to-end server/client runs on loopback
   unix sockets (exactly-one-terminal, byte-identical replay, explicit
   overload rejection, client-failure isolation, graceful drain). *)

module Protocol = Serve.Protocol
module Chan = Serve.Chan
module Server = Serve.Server
module Client = Serve.Client
module Instance = Sched.Instance
module Request = Sched.Request

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* protocol round-trips *)

(* a client/server name: one non-empty space-free token *)
let name_gen =
  QCheck.Gen.(
    string_size ~gen:(char_range 'a' 'z') (int_range 1 8))

(* rest-of-line free text: printable, no newlines (spaces allowed) *)
let detail_gen =
  QCheck.Gen.(
    string_size ~gen:(oneof [ char_range 'a' 'z'; return ' ' ]) (int_range 0 12))

let request_gen =
  QCheck.Gen.(
    int_range 0 10_000 >>= fun tag ->
    list_size (int_range 1 4) (int_range 0 99) >>= fun alternatives ->
    int_range 1 20 >>= fun deadline ->
    (* the codec rejects duplicate resources *)
    let alternatives = List.sort_uniq compare alternatives in
    return { Protocol.tag; alternatives; deadline })

let client_msg_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun client -> Protocol.Hello { client }) name_gen;
        map (fun r -> Protocol.Submit r) request_gen;
        map
          (fun rs -> Protocol.Batch rs)
          (list_size (int_range 1 6) request_gen);
        return Protocol.Tick;
        return Protocol.Bye;
      ])

let reason_gen =
  QCheck.Gen.(
    oneof
      [
        return Protocol.Overload;
        return Protocol.Draining;
        map (fun d -> Protocol.Invalid d) detail_gen;
      ])

let server_msg_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun server -> Protocol.Welcome { server }) name_gen;
        (int_range 0 9999 >>= fun tag ->
         int_range 0 9999 >>= fun round ->
         int_range 0 99 >>= fun resource ->
         return (Protocol.Scheduled { tag; round; resource }));
        (int_range 0 9999 >>= fun tag ->
         reason_gen >>= fun reason ->
         return (Protocol.Rejected { tag; reason }));
        map (fun tag -> Protocol.Expired { tag }) (int_range 0 9999);
        map (fun round -> Protocol.Round { round }) (int_range 0 9999);
        map (fun message -> Protocol.Error { message }) detail_gen;
      ])

let prop_client_roundtrip =
  qtest "client messages round-trip"
    (QCheck.make client_msg_gen ~print:Protocol.render_client)
    (fun m ->
       let line = Protocol.render_client m in
       (not (String.contains line '\n'))
       && Protocol.parse_client line = Ok m)

let prop_server_roundtrip =
  qtest "server messages round-trip"
    (QCheck.make server_msg_gen ~print:Protocol.render_server)
    (fun m ->
       let line = Protocol.render_server m in
       (not (String.contains line '\n'))
       && Protocol.parse_server line = Ok m)

let test_protocol_rejects () =
  let bad_client =
    [
      ""; "nope"; "hello"; "hello rsp/1"; "hello rsp/9 x"; "req";
      "req x 0 1"; "req 0 0,0 1"; "req -1 0 1"; "req 0 0 0"; "req 0  1";
      "batch"; "batch "; "batch ;"; "batch 0 0 1;"; "batch 0 0 1;x 1 2";
      "batch -1 0 1"; "batch 0 0 1;;1 1 1";
    ]
  in
  List.iter
    (fun line ->
       match Protocol.parse_client line with
       | Error _ -> ()
       | Ok _ -> Alcotest.failf "client line %S accepted" line)
    bad_client;
  let bad_server =
    [ ""; "welcome"; "welcome rsp/0 x"; "sched 1 2"; "rej"; "rej x";
      "rej 0 nonsense"; "exp"; "round x" ]
  in
  List.iter
    (fun line ->
       match Protocol.parse_server line with
       | Error _ -> ()
       | Ok _ -> Alcotest.failf "server line %S accepted" line)
    bad_server

let test_terminal_classification () =
  let open Protocol in
  check Alcotest.(option int) "sched" (Some 3)
    (terminal_tag (Scheduled { tag = 3; round = 0; resource = 1 }));
  check Alcotest.(option int) "rej" (Some 4)
    (terminal_tag (Rejected { tag = 4; reason = Overload }));
  check Alcotest.(option int) "exp" (Some 5) (terminal_tag (Expired { tag = 5 }));
  check Alcotest.(option int) "round" None (terminal_tag (Round { round = 9 }));
  check Alcotest.bool "welcome not terminal" false
    (is_terminal (Welcome { server = "x" }))

(* ------------------------------------------------------------------ *)
(* bounded channel *)

let test_chan_fifo_and_bound () =
  let c = Chan.create ~capacity:3 in
  check Alcotest.bool "push 1" true (Chan.try_push c 1);
  check Alcotest.bool "push 2" true (Chan.try_push c 2);
  check Alcotest.bool "push 3" true (Chan.try_push c 3);
  check Alcotest.bool "push 4 over capacity" false (Chan.try_push c 4);
  check Alcotest.int "length" 3 (Chan.length c);
  check Alcotest.(list int) "fifo drain" [ 1; 2; 3 ] (Chan.drain c);
  check Alcotest.int "empty after drain" 0 (Chan.length c);
  check Alcotest.bool "push after drain" true (Chan.try_push c 5);
  check Alcotest.(list int) "drained again" [ 5 ] (Chan.drain c)

let test_chan_concurrent () =
  let c = Chan.create ~capacity:max_int in
  let producers = 4 and per = 500 in
  let domains =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ignore (Chan.try_push c ((p * per) + i))
            done))
  in
  List.iter Domain.join domains;
  let all = Chan.drain c in
  check Alcotest.int "all pushes kept" (producers * per) (List.length all);
  check Alcotest.int "no duplicates"
    (producers * per)
    (List.length (List.sort_uniq compare all));
  (* each producer's own pushes stay in order *)
  List.iteri
    (fun p () ->
       let mine = List.filter (fun v -> v / per = p) all in
       check Alcotest.bool
         (Printf.sprintf "producer %d order preserved" p)
         true
         (List.sort compare mine = mine))
    (List.init producers (fun _ -> ()))

let test_chan_spsc_fifo_and_bound () =
  let c = Chan.create_spsc ~capacity:3 ~dummy:0 in
  check Alcotest.bool "push 1" true (Chan.try_push c 1);
  check Alcotest.bool "push 2" true (Chan.try_push c 2);
  check Alcotest.bool "push 3" true (Chan.try_push c 3);
  check Alcotest.bool "push 4 over capacity" false (Chan.try_push c 4);
  check Alcotest.int "length" 3 (Chan.length c);
  check Alcotest.(list int) "fifo drain" [ 1; 2; 3 ] (Chan.drain c);
  check Alcotest.int "empty after drain" 0 (Chan.length c);
  check Alcotest.bool "push after drain" true (Chan.try_push c 5);
  check Alcotest.(list int) "drained again" [ 5 ] (Chan.drain c)

(* The SPSC ring against the mutex ring as oracle: any single-threaded
   sequence of push / push_slice / drain observations must agree. *)
let prop_chan_spsc_like_locked =
  let op_gen =
    QCheck.Gen.(pair (int_bound 3) (pair small_nat (int_bound 6)))
  in
  qtest ~count:300 "spsc flavour behaves like the mutex flavour"
    (QCheck.make QCheck.Gen.(list_size (int_bound 80) op_gen))
    (fun ops ->
       let a = Chan.create ~capacity:5 in
       let b = Chan.create_spsc ~capacity:5 ~dummy:(-1) in
       let buf_a = ref [||] and buf_b = ref [||] in
       List.for_all
         (fun (op, (v, len)) ->
            match op with
            | 0 -> Chan.try_push a v = Chan.try_push b v
            | 1 -> Chan.drain a = Chan.drain b
            | 2 ->
              let na = Chan.drain_into a buf_a in
              let nb = Chan.drain_into b buf_b in
              na = nb
              && Array.sub !buf_a 0 na = Array.sub !buf_b 0 nb
            | _ ->
              let arr = Array.init len (fun i -> v + i) in
              Chan.push_slice a arr ~off:0 ~len
              = Chan.push_slice b arr ~off:0 ~len
              && Chan.length a = Chan.length b)
         ops
       && Chan.drain a = Chan.drain b)

(* One producer domain, one consumer domain: nothing lost, nothing
   duplicated, order preserved — the contract the serve path relies
   on. *)
let test_chan_spsc_two_domains () =
  let total = 20_000 in
  let c = Chan.create_spsc ~capacity:64 ~dummy:(-1) in
  let producer =
    Domain.spawn (fun () ->
        for v = 0 to total - 1 do
          while not (Chan.try_push c v) do
            Domain.cpu_relax ()
          done
        done)
  in
  let buf = ref [||] in
  let seen = ref 0 and ok = ref true in
  while !seen < total do
    let n = Chan.drain_into c buf in
    for i = 0 to n - 1 do
      if !buf.(i) <> !seen + i then ok := false
    done;
    seen := !seen + n;
    if n = 0 then Domain.cpu_relax ()
  done;
  Domain.join producer;
  check Alcotest.bool "values arrive in order, none lost" true !ok;
  check Alcotest.int "nothing extra" 0 (Chan.length c)

(* ------------------------------------------------------------------ *)
(* address parsing *)

let test_addr_of_string () =
  (match Server.addr_of_string "tcp:127.0.0.1:7477" with
   | Ok (Server.Tcp ("127.0.0.1", 7477)) -> ()
   | _ -> Alcotest.fail "tcp parse");
  (match Server.addr_of_string "unix:/tmp/x.sock" with
   | Ok (Server.Unix_sock "/tmp/x.sock") -> ()
   | _ -> Alcotest.fail "unix parse");
  List.iter
    (fun s ->
       match Server.addr_of_string s with
       | Error _ -> ()
       | Ok _ -> Alcotest.failf "%S accepted" s)
    [ ""; "tcp:"; "tcp:host"; "tcp:host:notaport"; "unix:"; "ftp:x" ]

(* ------------------------------------------------------------------ *)
(* end-to-end on loopback unix sockets *)

let fresh_sock_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "reqsched_test_%d_%d.sock" (Unix.getpid ()) !counter)

(* Start a server, run [f], then drain and return (f's result, final
   metrics snapshot). *)
let with_server ?(shards = 2) ?(domains = 0) ?(n = 8) ?(d = 4)
    ?(queue_capacity = 1024) ?(max_batch = 512) ?(outbox_capacity = 4096)
    ?(tick = `Manual) f =
  let path = fresh_sock_path () in
  let cfg =
    {
      Server.addr = Server.Unix_sock path;
      n_resources = n;
      d;
      shards;
      domains;
      strategy = (fun ~shard:_ ~metrics:_ -> Strategies.Global.balance ());
      tick;
      queue_capacity;
      max_batch;
      outbox_capacity;
      read_timeout = 10.0;
      name = "test";
    }
  in
  match Server.start cfg with
  | Error m -> Alcotest.failf "server start: %s" m
  | Ok srv ->
    let finally () =
      Server.drain srv;
      ignore (Server.wait srv);
      try Sys.remove path with Sys_error _ -> ()
    in
    let result =
      try f (Server.Unix_sock path) srv
      with e ->
        finally ();
        raise e
    in
    Server.drain srv;
    let snap = Server.wait srv in
    (try Sys.remove path with Sys_error _ -> ());
    (result, snap)

let counter snap name =
  match List.assoc_opt name snap with
  | Some (Obs.Metrics.Counter v) -> v
  | Some _ | None -> 0

let random_instance ~n ~d ~rounds ~load ~seed =
  let rng = Prelude.Rng.create ~seed in
  Adversary.Random_workload.make ~rng ~n ~d ~rounds ~load ()

let run_open ?(tick = `Manual) addr inst =
  match Client.open_loop ~addr ~inst ~tick () with
  | Error m -> Alcotest.failf "open_loop: %s" m
  | Ok r -> r

let test_e2e_exactly_one_terminal () =
  let inst = random_instance ~n:8 ~d:4 ~rounds:30 ~load:1.5 ~seed:11 in
  let r, snap =
    with_server ~shards:2 ~n:8 ~d:4 (fun addr _ -> run_open addr inst)
  in
  check Alcotest.int "every request submitted"
    (Instance.n_requests inst) r.Client.submitted;
  check Alcotest.int "terminals partition the submissions"
    r.Client.submitted
    (r.Client.scheduled + r.Client.rejected + r.Client.expired);
  check Alcotest.int "one decision per tag" r.Client.submitted
    (Array.length r.Client.decisions);
  check Alcotest.bool "something got scheduled" true (r.Client.scheduled > 0);
  (* server-side accounting agrees with the client's view *)
  check Alcotest.int "server served counter" r.Client.scheduled
    (counter snap "serve.served");
  check Alcotest.int "server expired counter" r.Client.expired
    (counter snap "serve.expired");
  check Alcotest.int "no client errors" 0 (counter snap "serve.client_errors");
  check Alcotest.int "no dropped responses" 0
    (counter snap "serve.responses_dropped")

let decisions_of_fresh_run ~shards inst =
  let r, _ = with_server ~shards ~n:8 ~d:4 (fun addr _ -> run_open addr inst) in
  Client.render_decisions r

let test_e2e_replay_deterministic () =
  let inst = random_instance ~n:8 ~d:4 ~rounds:25 ~load:1.3 ~seed:5 in
  List.iter
    (fun shards ->
       let a = decisions_of_fresh_run ~shards inst in
       let b = decisions_of_fresh_run ~shards inst in
       check Alcotest.string
         (Printf.sprintf "byte-identical decisions at %d shard(s)" shards)
         a b;
       check Alcotest.bool "log is non-trivial" true (String.length a > 0))
    [ 1; 2 ]

(* The load-bearing property of the worker-domain rebuild: under manual
   ticks, the decision stream and the decision-derived counters are a
   function of the instance alone, not of how many domains step the
   shards.  (serve.outbox_stalls is excluded — it counts backpressure
   timing, which legitimately varies run to run.) *)
let test_e2e_domains_invariant () =
  let inst = random_instance ~n:8 ~d:4 ~rounds:25 ~load:1.4 ~seed:31 in
  let run domains =
    let r, snap =
      with_server ~shards:4 ~domains ~n:8 ~d:4 (fun addr _ ->
          run_open addr inst)
    in
    (Client.render_decisions r, snap)
  in
  let counters snap =
    List.filter_map
      (function
        | ("serve.outbox_stalls", _) -> None
        | (k, Obs.Metrics.Counter v) -> Some (k, v)
        | _ -> None)
      snap
    |> List.sort compare
  in
  let base_dec, base_snap = run 1 in
  check Alcotest.bool "log is non-trivial" true (String.length base_dec > 0);
  List.iter
    (fun domains ->
       let dec, snap = run domains in
       check Alcotest.string
         (Printf.sprintf "decisions byte-identical at %d domain(s)" domains)
         base_dec dec;
       check
         Alcotest.(list (pair string int))
         (Printf.sprintf "merged counters identical at %d domain(s)" domains)
         (counters base_snap) (counters snap))
    [ 2; 4 ]

let test_e2e_codec_replay_equals_original () =
  (* save the trace, reload it, and check the reloaded instance drives
     the server to the same decisions — the save/load/wire grammar is
     one and the same *)
  let inst = random_instance ~n:8 ~d:4 ~rounds:20 ~load:1.2 ~seed:23 in
  let path = Filename.temp_file "reqsched_trace" ".rsp" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       Sched.Codec.save ~path inst;
       let inst' =
         match Sched.Codec.load ~path with
         | Ok i -> i
         | Error m -> Alcotest.failf "trace load: %s" m
       in
       let a = decisions_of_fresh_run ~shards:2 inst in
       let b = decisions_of_fresh_run ~shards:2 inst' in
       check Alcotest.string "trace replay matches live run" a b)

let test_e2e_interval_tick () =
  let inst = random_instance ~n:6 ~d:3 ~rounds:15 ~load:1.0 ~seed:7 in
  let r, _ =
    with_server ~shards:2 ~n:6 ~d:3 ~tick:(`Every 0.01) (fun addr _ ->
        run_open ~tick:(`Every 0.01) addr inst)
  in
  check Alcotest.int "all terminals collected" r.Client.submitted
    (r.Client.scheduled + r.Client.rejected + r.Client.expired)

let test_e2e_overload_rejects () =
  (* ten same-resource requests land in one un-ticked round against a
     capacity-1 inbox: one admitted, nine explicit overload rejects *)
  let inst =
    Instance.build ~n_resources:8 ~d:4
      (List.init 10 (fun _ ->
           Request.make ~arrival:0 ~alternatives:[ 0 ] ~deadline:4))
  in
  let r, snap =
    with_server ~shards:2 ~n:8 ~d:4 ~queue_capacity:1 (fun addr _ ->
        run_open addr inst)
  in
  check Alcotest.int "one admitted and served" 1 r.Client.scheduled;
  check Alcotest.int "rest rejected, not dropped" 9 r.Client.rejected;
  check Alcotest.int "overload counter" 9
    (counter snap "serve.rejected.overload");
  check Alcotest.int "still exactly one terminal each" 10
    (Array.length r.Client.decisions)

let test_e2e_closed_loop () =
  let inst = random_instance ~n:8 ~d:4 ~rounds:10 ~load:1.0 ~seed:9 in
  let r, _ =
    with_server ~shards:2 ~n:8 ~d:4 ~tick:(`Every 0.005) (fun addr _ ->
        match Client.closed_loop ~addr ~inst ~users:8 ~total:60 () with
        | Error m -> Alcotest.failf "closed_loop: %s" m
        | Ok r -> r)
  in
  check Alcotest.int "total resolved" 60
    (r.Client.scheduled + r.Client.rejected + r.Client.expired);
  check Alcotest.int "total submitted" 60 r.Client.submitted

let test_e2e_client_failure_isolated () =
  let inst = random_instance ~n:8 ~d:4 ~rounds:12 ~load:1.2 ~seed:31 in
  let (), snap =
    with_server ~shards:2 ~n:8 ~d:4 (fun addr _ ->
        (* rude client: greet, submit with requests in flight, vanish *)
        (match Client.connect addr ~client:"rude" with
         | Error m -> Alcotest.failf "rude connect: %s" m
         | Ok conn ->
           List.iter
             (fun tag ->
                match
                  Client.send conn
                    (Protocol.Submit
                       { Protocol.tag; alternatives = [ 0; 4 ]; deadline = 2 })
                with
                | Ok () -> ()
                | Error m -> Alcotest.failf "rude submit: %s" m)
             [ 0; 1; 2 ];
           Client.close conn);
        (* give the I/O loop a moment to observe the EOF *)
        Unix.sleepf 0.1;
        (* a well-behaved client is unaffected *)
        let r = run_open addr inst in
        check Alcotest.int "healthy client unaffected" r.Client.submitted
          (r.Client.scheduled + r.Client.rejected + r.Client.expired))
  in
  check Alcotest.bool "abrupt close with inflight counted" true
    (counter snap "serve.client_errors" >= 1);
  check Alcotest.int "no shard crashed" 0 (counter snap "serve.shard_crashes")

let test_e2e_draining_rejects_new_submissions () =
  (* a slow interval ticker keeps the in-flight request's window open
     long enough that the drain is still in progress when the late
     submission arrives *)
  let (), snap =
    with_server ~shards:1 ~n:4 ~d:3 ~tick:(`Every 0.15) (fun addr srv ->
        match Client.connect addr ~client:"late" with
        | Error m -> Alcotest.failf "connect: %s" m
        | Ok conn ->
          (match
             Client.send conn
               (Protocol.Submit
                  { Protocol.tag = 0; alternatives = [ 0 ]; deadline = 3 })
           with
           | Ok () -> ()
           | Error m -> Alcotest.failf "inflight send: %s" m);
          Unix.sleepf 0.03;
          Server.drain srv;
          Unix.sleepf 0.03;
          (match
             Client.send conn
               (Protocol.Submit
                  { Protocol.tag = 1; alternatives = [ 1 ]; deadline = 1 })
           with
           | Ok () -> ()
           | Error m -> Alcotest.failf "late send: %s" m);
          (* collect both terminals: the late one a draining reject, the
             in-flight one served to its deadline *)
          let seen = Hashtbl.create 4 in
          let rec collect () =
            if Hashtbl.length seen < 2 then
              match Client.recv ~timeout:5.0 conn with
              | Ok msg ->
                (match Protocol.terminal_tag msg with
                 | Some tag -> Hashtbl.replace seen tag msg
                 | None -> ());
                collect ()
              | Error m -> Alcotest.failf "recv: %s" m
          in
          collect ();
          (match Hashtbl.find_opt seen 1 with
           | Some (Protocol.Rejected { reason = Protocol.Draining; _ }) -> ()
           | Some m ->
             Alcotest.failf "expected draining reject for tag 1, got %S"
               (Protocol.render_server m)
           | None -> Alcotest.fail "no terminal for tag 1");
          (match Hashtbl.find_opt seen 0 with
           | Some (Protocol.Scheduled _) -> ()
           | Some m ->
             Alcotest.failf "expected tag 0 served during drain, got %S"
               (Protocol.render_server m)
           | None -> Alcotest.fail "no terminal for tag 0");
          Client.close conn)
  in
  check Alcotest.bool "draining reject counted" true
    (counter snap "serve.rejected.draining" >= 1)

(* ------------------------------------------------------------------ *)
(* batching, outbox backpressure, and listener/resolver failure modes *)

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_e2e_batched_replay_identical () =
  (* the batch frame is pure wire-level chunking: for every batch size
     the decision log must be byte-identical to per-line submission *)
  let inst = random_instance ~n:8 ~d:4 ~rounds:25 ~load:2.0 ~seed:41 in
  let run batch =
    let r, snap =
      with_server ~shards:2 ~n:8 ~d:4 (fun addr _ ->
          match Client.open_loop ~addr ~inst ~tick:`Manual ~batch () with
          | Error m -> Alcotest.failf "open_loop batch=%d: %s" batch m
          | Ok r -> r)
    in
    (Client.render_decisions r, counter snap "serve.batches_in")
  in
  let baseline, frames1 = run 1 in
  check Alcotest.bool "log is non-trivial" true (String.length baseline > 0);
  check Alcotest.int "batch=1 stays on the per-line frame" 0 frames1;
  List.iter
    (fun batch ->
       let log, frames = run batch in
       check Alcotest.string
         (Printf.sprintf "batch=%d decisions byte-identical" batch)
         baseline log;
       check Alcotest.bool
         (Printf.sprintf "batch=%d actually sent batch frames" batch)
         true (frames > 0))
    [ 3; 64 ]

let test_e2e_outbox_overflow_no_reply_dropped () =
  (* a capacity-1 outbox forces the shards to stall on nearly every
     reply; the stall must be counted and every tag must still get its
     terminal — the silent-drop bug this PR fixes *)
  let inst = random_instance ~n:8 ~d:4 ~rounds:20 ~load:3.0 ~seed:17 in
  let r, snap =
    with_server ~shards:2 ~n:8 ~d:4 ~outbox_capacity:1 (fun addr _ ->
        run_open addr inst)
  in
  check Alcotest.int "every tag still gets exactly one terminal"
    r.Client.submitted
    (Array.length r.Client.decisions);
  check Alcotest.int "terminals partition the submissions" r.Client.submitted
    (r.Client.scheduled + r.Client.rejected + r.Client.expired);
  check Alcotest.bool "the capacity-1 outbox actually stalled" true
    (counter snap "serve.outbox_stalls" > 0);
  check Alcotest.int "no dropped responses" 0
    (counter snap "serve.responses_dropped")

let test_e2e_oversize_batch_rejected () =
  (* a batch over the server's limit is rejected whole — one terminal
     per entry, nothing admitted, nothing dropped *)
  let (), snap =
    with_server ~shards:2 ~n:8 ~d:4 ~max_batch:2 (fun addr _ ->
        match Client.connect addr ~client:"big" with
        | Error m -> Alcotest.failf "connect: %s" m
        | Ok conn ->
          let reqs =
            List.init 3 (fun tag ->
                { Protocol.tag; alternatives = [ tag ]; deadline = 2 })
          in
          (match Client.send conn (Protocol.Batch reqs) with
           | Ok () -> ()
           | Error m -> Alcotest.failf "send: %s" m);
          let seen = ref 0 in
          while !seen < 3 do
            match Client.recv ~timeout:5.0 conn with
            | Ok (Protocol.Rejected { reason = Protocol.Invalid _; _ }) ->
              incr seen
            | Ok msg ->
              Alcotest.failf "expected invalid reject, got %S"
                (Protocol.render_server msg)
            | Error m -> Alcotest.failf "recv: %s" m
          done;
          Client.close conn)
  in
  check Alcotest.int "nothing reached a shard" 0 (counter snap "serve.served")

let base_cfg addr =
  {
    Server.addr;
    n_resources = 8;
    d = 4;
    shards = 2;
    domains = 0;
    strategy = (fun ~shard:_ ~metrics:_ -> Strategies.Global.balance ());
    tick = `Manual;
    queue_capacity = 64;
    max_batch = 512;
    outbox_capacity = 64;
    read_timeout = 10.0;
    name = "test";
  }

let test_start_bad_hostname () =
  (* an unresolvable host must come back as a clean [Error], not an
     uncaught [Not_found] out of gethostbyname *)
  match Server.start (base_cfg (Server.Tcp ("no-such-host.invalid", 1))) with
  | Error m ->
    check Alcotest.bool "error names the host" true
      (contains_sub ~sub:"no-such-host.invalid" m)
  | Ok srv ->
    Server.drain srv;
    ignore (Server.wait srv);
    Alcotest.fail "start succeeded on an unresolvable host"

let test_start_refuses_non_socket_path () =
  (* a regular file at the unix-socket path is someone else's data: the
     server must refuse to start and leave the file untouched *)
  let path = Filename.temp_file "reqsched_notsock" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       let oc = open_out path in
       output_string oc "precious\n";
       close_out oc;
       (match Server.start (base_cfg (Server.Unix_sock path)) with
        | Error m ->
          check Alcotest.bool "error says why" true
            (contains_sub ~sub:"not a socket" m)
        | Ok srv ->
          Server.drain srv;
          ignore (Server.wait srv);
          Alcotest.fail "server started over a regular file");
       let ic = open_in path in
       let line = input_line ic in
       close_in ic;
       check Alcotest.string "file contents preserved" "precious" line)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          prop_client_roundtrip;
          prop_server_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_protocol_rejects;
          Alcotest.test_case "terminal classification" `Quick
            test_terminal_classification;
        ] );
      ( "chan",
        [
          Alcotest.test_case "fifo and bound" `Quick test_chan_fifo_and_bound;
          Alcotest.test_case "concurrent producers" `Quick
            test_chan_concurrent;
          Alcotest.test_case "spsc fifo and bound" `Quick
            test_chan_spsc_fifo_and_bound;
          prop_chan_spsc_like_locked;
          Alcotest.test_case "spsc across two domains" `Quick
            test_chan_spsc_two_domains;
        ] );
      ( "addr",
        [ Alcotest.test_case "parse" `Quick test_addr_of_string ] );
      ( "e2e",
        [
          Alcotest.test_case "exactly one terminal" `Quick
            test_e2e_exactly_one_terminal;
          Alcotest.test_case "replay deterministic" `Quick
            test_e2e_replay_deterministic;
          Alcotest.test_case "domain-count invariant" `Quick
            test_e2e_domains_invariant;
          Alcotest.test_case "codec trace replays identically" `Quick
            test_e2e_codec_replay_equals_original;
          Alcotest.test_case "interval ticker" `Quick test_e2e_interval_tick;
          Alcotest.test_case "overload rejects explicitly" `Quick
            test_e2e_overload_rejects;
          Alcotest.test_case "closed loop" `Quick test_e2e_closed_loop;
          Alcotest.test_case "client failure isolated" `Quick
            test_e2e_client_failure_isolated;
          Alcotest.test_case "draining rejects" `Quick
            test_e2e_draining_rejects_new_submissions;
          Alcotest.test_case "batched replay byte-identical" `Quick
            test_e2e_batched_replay_identical;
          Alcotest.test_case "outbox overflow drops no reply" `Quick
            test_e2e_outbox_overflow_no_reply_dropped;
          Alcotest.test_case "oversize batch rejected whole" `Quick
            test_e2e_oversize_batch_rejected;
        ] );
      ( "start",
        [
          Alcotest.test_case "bad hostname is a clean error" `Quick
            test_start_bad_hostname;
          Alcotest.test_case "refuses non-socket path" `Quick
            test_start_refuses_non_socket_path;
        ] );
    ]
