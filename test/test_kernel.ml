(* Differential suite for the warm-start incremental kernel.

   The kernel (Strategies.Kernel, behind Global's default
   [~solver:Kernel]) claims to be outcome-identical to the from-scratch
   rebuild path for every global strategy — same served set, same serve
   rounds and resources, same waste, for any engine and any (pure)
   bias.  These tests pin that claim against the rebuild oracle:

   - randomised instances with varied deadlines and alternative counts,
     with and without an adversarial pure tie-breaking bias;
   - every fixed theorem adversary of the paper;
   - the adaptive Thm 2.6 adversary through Engine.run_adaptive (the
     adversary observes the algorithm, so equality of the emitted
     instances is itself part of the claim);
   - hand-driven Strategy.step with deadlines exceeding the nominal d
     (reachable only outside Instance.build — exercises the via-pool);
   - the Engine.Live incremental path used by the server;
   - Graph.Warm against Graph.Tiered on raw random weighted graphs,
     edge-for-edge;
   - the kernel's Obs counters (augment searches, warm hits, step
     timing) actually accumulate. *)

module Request = Sched.Request
module Instance = Sched.Instance
module Engine = Sched.Engine
module Outcome = Sched.Outcome
module Strategy = Sched.Strategy
module Global = Strategies.Global
module Rng = Prelude.Rng

let check = Alcotest.check

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* every global strategy, as (name, solver-and-bias-polymorphic maker) *)
type maker =
  ?solver:Global.solver -> ?bias:Strategy.bias -> unit -> Strategy.factory

let makers : (string * maker) list =
  [
    ("A_fix", fun ?solver ?bias () -> Global.fix ?solver ?bias ());
    ("A_current", fun ?solver ?bias () -> Global.current ?solver ?bias ());
    ( "A_fix_balance",
      fun ?solver ?bias () -> Global.fix_balance ?solver ?bias () );
    ("A_eager", fun ?solver ?bias () -> Global.eager ?solver ?bias ());
    ("A_balance", fun ?solver ?bias () -> Global.balance ?solver ?bias ());
    ("A_remax", fun ?solver ?bias () -> Global.remax ?solver ?bias ());
  ]

(* everything an outcome determines, as one comparable value *)
let outcome_sig (o : Outcome.t) =
  ( Array.to_list o.Outcome.served_at,
    o.Outcome.served,
    o.Outcome.wasted,
    Array.to_list o.Outcome.per_round_served )

let instance_sig (inst : Instance.t) =
  Array.to_list
    (Array.map
       (fun (r : Request.t) ->
          ( r.Request.arrival,
            Array.to_list r.Request.alternatives,
            r.Request.deadline ))
       inst.Instance.requests)

(* a pure, adversarial tie-break: spreads over ids, resources and
   rounds, takes negative values, depends on nothing mutable *)
let adv_bias : Strategy.bias =
 fun ~request ~resource ~round ->
  (((request.Request.id * 31) + (resource * 7) + (round * 13)) mod 7) - 3

let run_both ?bias inst ((_, maker) : string * maker) =
  let k = Engine.run inst (maker ~solver:Global.Kernel ?bias ()) in
  let r = Engine.run inst (maker ~solver:Global.Rebuild ?bias ()) in
  outcome_sig k = outcome_sig r

(* ------------------------------------------------------------------ *)
(* random instances *)

let instance_gen =
  QCheck.Gen.(
    int_range 2 6 >>= fun n ->
    int_range 1 5 >>= fun d ->
    int_range 0 40 >>= fun n_req ->
    int_range 0 100_000 >>= fun seed -> return (n, d, n_req, seed))

let instance_arb =
  QCheck.make instance_gen ~print:(fun (n, d, n_req, seed) ->
      Printf.sprintf "n=%d d=%d req=%d seed=%d" n d n_req seed)

(* deadlines vary in [1, d] and each request lists 1-3 distinct
   alternatives, so the kernel's window logic and the dormant/viable
   distinction are both exercised *)
let build_random (n, d, n_req, seed) =
  let rng = Rng.create ~seed in
  let protos = ref [] in
  let arrival = ref 0 in
  for _ = 1 to n_req do
    arrival := !arrival + Rng.int rng 2;
    let n_alts = 1 + Rng.int rng (min 3 n) in
    let start = Rng.int rng n in
    let alts = List.init n_alts (fun i -> (start + i) mod n) in
    let deadline = 1 + Rng.int rng d in
    protos :=
      Request.make ~arrival:!arrival ~alternatives:alts ~deadline :: !protos
  done;
  Instance.build ~n_resources:n ~d (List.rev !protos)

let prop_kernel_matches_rebuild =
  qtest ~count:250 "kernel == rebuild on random instances (all strategies)"
    instance_arb (fun spec ->
      let inst = build_random spec in
      List.for_all (run_both inst) makers)

let prop_kernel_matches_rebuild_biased =
  qtest ~count:250
    "kernel == rebuild under an adversarial pure bias (all strategies)"
    instance_arb (fun spec ->
      let inst = build_random spec in
      List.for_all (run_both ~bias:adv_bias inst) makers)

(* ------------------------------------------------------------------ *)
(* theorem adversaries *)

let theorem_instances () =
  [
    ("thm21", (Adversary.Thm21.make ~d:4 ~phases:3).Adversary.Scenario.instance);
    ( "thm22",
      (Adversary.Thm22.make ~ell:4 ~d:6 ~phases:2).Adversary.Scenario.instance
    );
    ("thm23", (Adversary.Thm23.make ~d:4 ~phases:3).Adversary.Scenario.instance);
    ("thm24", (Adversary.Thm24.make ~d:4 ~phases:3).Adversary.Scenario.instance);
    ( "thm25",
      (Adversary.Thm25.make ~d:5 ~groups:3 ~intervals:3)
        .Adversary.Scenario.instance );
    ( "thm37",
      (fst (Adversary.Thm37.make ~d:4 ~intervals:3)).Adversary.Scenario.instance
    );
  ]

let test_theorem_adversaries () =
  List.iter
    (fun (wname, inst) ->
       List.iter
         (fun ((sname, _) as m) ->
            check Alcotest.bool
              (Printf.sprintf "%s/%s kernel == rebuild" wname sname)
              true
              (run_both inst m);
            check Alcotest.bool
              (Printf.sprintf "%s/%s kernel == rebuild (biased)" wname sname)
              true
              (run_both ~bias:adv_bias inst m))
         makers)
    (theorem_instances ())

(* the adaptive adversary observes the algorithm's serves, so if the two
   solvers diverged anywhere the emitted instances would diverge too --
   both the outcome and the workload must match *)
let test_adaptive_thm26 () =
  let d = 3 and phases = 2 in
  let run (maker : maker) solver =
    let adv = Adversary.Thm26.create ~d ~phases in
    Engine.run_adaptive ~n:Adversary.Thm26.n_resources ~d
      ~last_arrival_round:(Adversary.Thm26.last_arrival_round ~d ~phases)
      ~adversary:(Adversary.Thm26.adversary adv)
      (maker ~solver ?bias:(Some adv_bias) ())
  in
  List.iter
    (fun (sname, maker) ->
       let k = run maker Global.Kernel and r = run maker Global.Rebuild in
       check Alcotest.bool
         (Printf.sprintf "thm26/%s same emitted instance" sname)
         true
         (instance_sig k.Outcome.instance = instance_sig r.Outcome.instance);
       check Alcotest.bool
         (Printf.sprintf "thm26/%s same outcome" sname)
         true
         (outcome_sig k = outcome_sig r))
    makers

(* ------------------------------------------------------------------ *)
(* deadlines beyond the nominal d (hand-driven steps only) *)

(* Instance.build and the live engine cap deadlines at d, but the raw
   Strategy.step contract doesn't; the kernel parks requests whose
   window extends past the current planning horizon in a via-pool.
   Drive both solvers by hand with deadline up to d+2 and compare the
   serve lists of every round. *)
let test_deadline_beyond_d () =
  let n = 3 and d = 2 in
  let mk_req id ~arrival ~alts ~deadline =
    Request.with_id (Request.make ~arrival ~alternatives:alts ~deadline) id
  in
  let schedule =
    [|
      [| mk_req 0 ~arrival:0 ~alts:[ 0; 1 ] ~deadline:4;
         mk_req 1 ~arrival:0 ~alts:[ 0 ] ~deadline:4;
         mk_req 2 ~arrival:0 ~alts:[ 2 ] ~deadline:1 |];
      [| mk_req 3 ~arrival:1 ~alts:[ 1; 2 ] ~deadline:3 |];
      [||];
      [| mk_req 4 ~arrival:3 ~alts:[ 0; 1; 2 ] ~deadline:4;
         mk_req 5 ~arrival:3 ~alts:[ 1 ] ~deadline:2 |];
      [||];
      [||];
      [||];
    |]
  in
  List.iter
    (fun ((sname, maker) : string * maker) ->
       let step solver =
         let strat = (maker ~solver ()) ~n ~d in
         Array.to_list
           (Array.mapi
              (fun round arrivals ->
                 List.map
                   (fun { Strategy.request; resource } -> (request, resource))
                   (strat.Strategy.step ~round ~arrivals))
              schedule)
       in
       check
         Alcotest.(list (list (pair int int)))
         (Printf.sprintf "%s serves per round, deadline > d" sname)
         (step Global.Rebuild) (step Global.Kernel))
    makers

(* ------------------------------------------------------------------ *)
(* the live engine path *)

let prop_live_path =
  qtest ~count:80 "kernel == rebuild through Engine.Live" instance_arb
    (fun spec ->
      let inst = build_random spec in
      let run solver =
        let live =
          Engine.Live.create ~n:inst.Instance.n_resources ~d:inst.Instance.d
            (Global.balance ~solver ())
        in
        let log = ref [] in
        for round = 0 to inst.Instance.horizon - 1 do
          Array.iter
            (fun (r : Request.t) ->
               match
                 Engine.Live.submit live
                   ~alternatives:(Array.to_list r.Request.alternatives)
                   ~deadline:r.Request.deadline
               with
               | Ok _ -> ()
               | Error m -> failwith m)
            (Instance.arrivals_at inst round);
          let o = Engine.Live.step live in
          log :=
            (o.Engine.Live.round, o.Engine.Live.served, o.Engine.Live.expired)
            :: !log
        done;
        !log
      in
      run Global.Kernel = run Global.Rebuild)

(* ------------------------------------------------------------------ *)
(* Graph.Warm against Graph.Tiered, edge for edge *)

let graph_gen =
  QCheck.Gen.(
    int_range 0 6 >>= fun nl ->
    int_range 0 6 >>= fun nr ->
    int_range 1 3 >>= fun k ->
    int_range 0 100_000 >>= fun seed -> return (nl, nr, k, seed))

let graph_arb =
  QCheck.make graph_gen ~print:(fun (nl, nr, k, seed) ->
      Printf.sprintf "nl=%d nr=%d k=%d seed=%d" nl nr k seed)

let prop_warm_equals_tiered =
  qtest ~count:300 "Warm.solve == Tiered.solve on random weighted graphs"
    graph_arb (fun (nl, nr, k, seed) ->
      let rng = Rng.create ~seed in
      let g = Graph.Bipartite.create ~n_left:nl ~n_right:nr in
      let warm = Graph.Warm.create () in
      Graph.Warm.begin_round warm ~n_right:nr ~k;
      let weights = ref [] in
      (* identical insertion order on both sides: per-left groups of
         edges to random rights, random weights in [-3, 3] per tier *)
      for _ = 0 to nl - 1 do
        let l = Graph.Warm.add_left warm in
        let degree = if nr = 0 then 0 else Rng.int rng (nr + 1) in
        for _ = 1 to degree do
          let right = Rng.int rng nr in
          ignore (Graph.Bipartite.add_edge g ~left:l ~right : int);
          let e = Graph.Warm.add_edge warm ~right in
          let w = Array.init k (fun _ -> Rng.int rng 7 - 3) in
          Array.iteri (fun j v -> Graph.Warm.set_weight warm e j v) w;
          weights := w :: !weights
        done
      done;
      let weights = Array.of_list (List.rev !weights) in
      let m =
        Graph.Tiered.solve g ~weight:(fun e -> Graph.Lexvec.of_array weights.(e))
      in
      Graph.Warm.solve warm;
      let lefts_equal =
        List.for_all
          (fun l ->
             Graph.Warm.left_to warm l = m.Graph.Matching.left_to.(l)
             && Graph.Warm.left_edge warm l = m.Graph.Matching.left_edge.(l))
          (List.init nl Fun.id)
      and rights_equal =
        List.for_all
          (fun r -> Graph.Warm.right_to warm r = m.Graph.Matching.right_to.(r))
          (List.init nr Fun.id)
      in
      lefts_equal && rights_equal)

(* Satellite of the bucketed-SPFA change: the bucketed target-selection
   queue must reproduce the ring scan's matching slot-for-slot on raw
   weighted graphs — same 300-graph generator as the Tiered
   differential, but driving two Warm arenas that differ only in
   variant. *)
let prop_warm_bucketed_equals_ring =
  qtest ~count:300 "Warm Bucketed == Ring on random weighted graphs"
    graph_arb (fun (nl, nr, k, seed) ->
      let rng = Rng.create ~seed in
      let ring = Graph.Warm.create ~variant:Graph.Warm.Ring () in
      let buck = Graph.Warm.create ~variant:Graph.Warm.Bucketed () in
      Graph.Warm.begin_round ring ~n_right:nr ~k;
      Graph.Warm.begin_round buck ~n_right:nr ~k;
      for _ = 0 to nl - 1 do
        ignore (Graph.Warm.add_left ring : int);
        ignore (Graph.Warm.add_left buck : int);
        let degree = if nr = 0 then 0 else Rng.int rng (nr + 1) in
        for _ = 1 to degree do
          let right = Rng.int rng nr in
          let e = Graph.Warm.add_edge ring ~right in
          let e' = Graph.Warm.add_edge buck ~right in
          for j = 0 to k - 1 do
            let w = Rng.int rng 7 - 3 in
            Graph.Warm.set_weight ring e j w;
            Graph.Warm.set_weight buck e' j w
          done
        done
      done;
      Graph.Warm.solve ring;
      Graph.Warm.solve buck;
      List.for_all
        (fun l ->
           Graph.Warm.left_to buck l = Graph.Warm.left_to ring l
           && Graph.Warm.left_edge buck l = Graph.Warm.left_edge ring l)
        (List.init nl Fun.id)
      && List.for_all
           (fun r -> Graph.Warm.right_to buck r = Graph.Warm.right_to ring r)
           (List.init nr Fun.id))

(* ... and end to end: the default (bucketed) kernel against the
   ring-scan kernel across all strategies on random engine instances. *)
let prop_kernel_bucketed_equals_ring =
  qtest ~count:100 "kernel (bucketed) == kernel-ring on random instances"
    instance_arb (fun spec ->
      let inst = build_random spec in
      List.for_all
        (fun ((_, maker) : string * maker) ->
           let b = Engine.run inst (maker ~solver:Global.Kernel ()) in
           let r = Engine.run inst (maker ~solver:Global.Kernel_ring ()) in
           outcome_sig b = outcome_sig r)
        makers)

(* ------------------------------------------------------------------ *)
(* kernel metrics *)

let test_kernel_metrics () =
  let m = Obs.Metrics.create () in
  let inst = build_random (4, 3, 30, 7) in
  let o = Engine.run inst (Global.balance ~metrics:m ()) in
  check Alcotest.bool "some requests served" true (o.Outcome.served > 0);
  check Alcotest.bool "augment searches counted" true
    (Obs.Metrics.counter m "strategy.augment_searches" > 0);
  check Alcotest.bool "warm hits counted" true
    (Obs.Metrics.counter m "strategy.warm_hits" >= 0);
  (match Obs.Metrics.histogram m "strategy.kernel_us" with
   | Some stats ->
     check Alcotest.bool "kernel_us observed every round" true
       (Prelude.Stats.count stats = inst.Instance.horizon)
   | None -> Alcotest.fail "strategy.kernel_us histogram missing")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "kernel"
    [
      ( "differential",
        [
          prop_kernel_matches_rebuild;
          prop_kernel_matches_rebuild_biased;
          Alcotest.test_case "theorem adversaries" `Quick
            test_theorem_adversaries;
          Alcotest.test_case "adaptive thm26" `Quick test_adaptive_thm26;
          Alcotest.test_case "deadline beyond d" `Quick
            test_deadline_beyond_d;
          prop_live_path;
        ] );
      ( "warm-arena",
        [
          prop_warm_equals_tiered;
          prop_warm_bucketed_equals_ring;
          prop_kernel_bucketed_equals_ring;
        ] );
      ("metrics", [ Alcotest.test_case "counters" `Quick test_kernel_metrics ]);
    ]
