(* The integration test: every reproduction experiment of DESIGN.md §3
   runs at quick parameters and every one of its named checks must
   pass.  This is the test-suite mirror of `dune exec bench/main.exe`. *)

let experiment_case (id, f) =
  Alcotest.test_case id `Slow (fun () ->
      let e = f ~ctx:(Report.Jobs.local ()) ~quick:true in
      List.iter
        (fun (name, ok) ->
           Alcotest.check Alcotest.bool
             (Printf.sprintf "[%s] %s" e.Report.Experiments.id name)
             true ok)
        e.Report.Experiments.checks)

let test_harness_asymptotic_exact () =
  (* the doubling-difference estimator must cancel additive terms:
     thm 2.1 at d=3 gives exactly 5/3 per phase *)
  let measured =
    Report.Harness.asymptotic_ratio_exact
      ~make:(fun phases -> Adversary.Thm21.make ~d:3 ~phases)
      ~factory:(fun sc -> Strategies.Global.fix ~bias:sc.bias ())
      ~k:2
  in
  Alcotest.check
    (Alcotest.testable Prelude.Rat.pp Prelude.Rat.equal)
    "5/3" (Prelude.Rat.make 5 3) measured

let test_harness_opt_hint_mismatch_detected () =
  let sc = Adversary.Thm21.make ~d:2 ~phases:1 in
  let broken = { sc with Adversary.Scenario.opt_hint = Some 1 } in
  match
    Report.Harness.run_scenario broken (Strategies.Global.fix ())
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on wrong optimum hint"

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_render_contains_pass_lines () =
  let e =
    Report.Experiments.t1_fix_lb ~ctx:(Report.Jobs.local ()) ~quick:true
  in
  let s = Report.Experiments.render e in
  Alcotest.check Alcotest.bool "has PASS marker" true
    (contains ~needle:"[PASS]" s)

(* Regression: greedy_random's coin rng was hardcoded to seed 0, so
   --seed changed the workload but never the strategy's coin flips.  Two
   seeds on the SAME instance must now produce different schedules. *)
let test_registry_seed_reaches_greedy_random () =
  let inst =
    match
      Report.Registry.instance_of_workload ~name:"uniform" ~n:8 ~d:4
        ~rounds:80 ~load:1.3 ~seed:42
    with
    | Ok i -> i
    | Error m -> Alcotest.fail m
  in
  let served_at seed =
    match Report.Registry.factory_of_name ~seed "greedy_random" with
    | Error m -> Alcotest.fail m
    | Ok factory ->
      (Sched.Engine.run inst factory).Sched.Outcome.served_at
  in
  Alcotest.check Alcotest.bool "same seed reproduces" true
    (served_at 1 = served_at 1);
  Alcotest.check Alcotest.bool "different seeds differ" false
    (served_at 1 = served_at 2)

let test_registry_knows_every_strategy () =
  List.iter
    (fun name ->
       match Report.Registry.factory_of_name ~seed:0 name with
       | Ok _ -> ()
       | Error m -> Alcotest.fail m)
    Report.Registry.strategy_names;
  match Report.Registry.factory_of_name ~seed:0 "no_such_strategy" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown strategy accepted"

(* Regression: the bench's hand-rolled parser returned None for a value
   flag sitting in final position, silently running the full suite when
   the user typed `--only` and forgot the id. *)
let test_flags_trailing_value_is_error () =
  let argv suffix = Array.of_list ("main.exe" :: suffix) in
  (match Report.Flags.value_flag (argv [ "--only"; "T1" ]) "--only" with
   | Ok (Some "T1") -> ()
   | _ -> Alcotest.fail "value not parsed");
  (match Report.Flags.value_flag (argv [ "--quick" ]) "--only" with
   | Ok None -> ()
   | _ -> Alcotest.fail "absent flag must be Ok None");
  (match Report.Flags.value_flag (argv [ "--quick"; "--only" ]) "--only" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "trailing value flag must be an error");
  (* argv.(0) is the executable, never a flag match *)
  match Report.Flags.value_flag (Array.of_list [ "--only" ]) "--only" with
  | Ok None -> ()
  | _ -> Alcotest.fail "argv.(0) must not match"

let () =
  Alcotest.run "report"
    ~and_exit:true
    [
      ( "harness",
        [
          Alcotest.test_case "asymptotic exact" `Quick
            test_harness_asymptotic_exact;
          Alcotest.test_case "hint mismatch detected" `Quick
            test_harness_opt_hint_mismatch_detected;
          Alcotest.test_case "render" `Quick test_render_contains_pass_lines;
        ] );
      ( "registry",
        [
          Alcotest.test_case "seed reaches greedy_random" `Quick
            test_registry_seed_reaches_greedy_random;
          Alcotest.test_case "every strategy constructs" `Quick
            test_registry_knows_every_strategy;
        ] );
      ( "flags",
        [
          Alcotest.test_case "trailing value flag" `Quick
            test_flags_trailing_value_is_error;
        ] );
      ("experiments", List.map experiment_case Report.Experiments.catalog);
    ]
