(* Tests for the offline optimum solvers: the grouped max-flow route
   must agree with Hopcroft-Karp on the expanded graph, and the greedy
   EDF oracle must match both on single-alternative instances. *)

module Request = Sched.Request
module Instance = Sched.Instance
module Rng = Prelude.Rng

let check = Alcotest.check
let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let req ~arrival ~alts ~deadline =
  Request.make ~arrival ~alternatives:alts ~deadline

(* ------------------------------------------------------------------ *)
(* hand instances with known optima *)

let test_opt_trivial () =
  let inst =
    Instance.build ~n_resources:2 ~d:1
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
      ]
  in
  (* 2 resources, 1 round each: optimum 2 of 3 *)
  check Alcotest.int "expanded" 2 (Offline.Opt.expanded inst);
  check Alcotest.int "grouped" 2 (Offline.Opt.grouped inst)

let test_opt_block_saturation () =
  (* a block(2,d) exactly saturates its pair *)
  let d = 4 in
  let inst =
    Instance.build ~n_resources:2 ~d
      (Adversary.Block.pair ~arrival:0 ~r0:0 ~r1:1 ~d)
  in
  check Alcotest.int "all served" (2 * d) (Offline.Opt.value inst);
  (* doubling the block overloads: still only 2d slots *)
  let inst2 =
    Instance.build ~n_resources:2 ~d
      (Adversary.Block.pair ~arrival:0 ~r0:0 ~r1:1 ~d
       @ Adversary.Block.pair ~arrival:0 ~r0:0 ~r1:1 ~d)
  in
  check Alcotest.int "capacity bound" (2 * d) (Offline.Opt.value inst2)

let test_opt_ring_block () =
  (* block(a,d) admits a perfect schedule for any ring size *)
  List.iter
    (fun a ->
       let d = 3 in
       let resources = Array.init a (fun i -> i) in
       let inst =
         Instance.build ~n_resources:a ~d
           (Adversary.Block.ring ~arrival:0 ~resources ~d)
       in
       check Alcotest.int
         (Printf.sprintf "ring a=%d fully servable" a)
         (a * d) (Offline.Opt.value inst))
    [ 2; 3; 4; 6 ]

let test_opt_empty () =
  let inst = Instance.build ~n_resources:3 ~d:2 [] in
  check Alcotest.int "empty expanded" 0 (Offline.Opt.expanded inst);
  check Alcotest.int "empty grouped" 0 (Offline.Opt.grouped inst)

let test_opt_windows_matter () =
  (* same resource, deadline 1: only one of two same-round requests *)
  let inst =
    Instance.build ~n_resources:1 ~d:2
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:1 ~alts:[ 0 ] ~deadline:2;
      ]
  in
  check Alcotest.int "windows respected" 2 (Offline.Opt.value inst)

(* ------------------------------------------------------------------ *)
(* EDF oracle *)

let test_edf_oracle_simple () =
  let inst =
    Instance.build ~n_resources:1 ~d:3
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:2;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:3;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:3;
      ]
  in
  (* rounds 0,1,2 serve the three tightest; one deadline-3 request is
     lost (only 3 slots before every window closes) *)
  check Alcotest.int "edf oracle" 3 (Offline.Opt.single_alternative_edf inst);
  check Alcotest.int "matches matching" (Offline.Opt.value inst)
    (Offline.Opt.single_alternative_edf inst)

let test_edf_oracle_rejects_two_alts () =
  let inst =
    Instance.build ~n_resources:2 ~d:1
      [ req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1 ]
  in
  match Offline.Opt.single_alternative_edf inst with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)
(* properties *)

let instance_gen =
  QCheck.Gen.(
    int_range 1 5 >>= fun n ->
    int_range 1 4 >>= fun d ->
    int_range 0 35 >>= fun n_req ->
    int_range 0 10_000 >>= fun seed ->
    return (n, d, n_req, seed))

let instance_arb ~alts_max =
  QCheck.make
    (QCheck.Gen.map (fun s -> (s, alts_max)) instance_gen)
    ~print:(fun ((n, d, n_req, seed), am) ->
        Printf.sprintf "n=%d d=%d req=%d seed=%d alts<=%d" n d n_req seed am)

let build_random ((n, d, n_req, seed), alts_max) =
  let rng = Rng.create ~seed in
  let protos = ref [] in
  let arrival = ref 0 in
  for _ = 1 to n_req do
    arrival := !arrival + Rng.int rng 2;
    let deadline = 1 + Rng.int rng d in
    let n_alts = 1 + Rng.int rng (min alts_max n) in
    let all = Array.init n (fun i -> i) in
    Rng.shuffle rng all;
    let alts = Array.to_list (Array.sub all 0 n_alts) in
    protos :=
      Request.make ~arrival:!arrival ~alternatives:alts ~deadline :: !protos
  done;
  Instance.build ~n_resources:n ~d (List.rev !protos)

let prop_grouped_equals_expanded =
  qtest ~count:250 "grouped max-flow = Hopcroft-Karp"
    (instance_arb ~alts_max:3) (fun spec ->
        let inst = build_random spec in
        Offline.Opt.grouped inst = Offline.Opt.expanded inst)

let prop_edf_oracle_equals_matching =
  qtest ~count:250 "EDF oracle = maximum matching (single alternative)"
    (instance_arb ~alts_max:1) (fun spec ->
        let inst = build_random spec in
        Offline.Opt.single_alternative_edf inst = Offline.Opt.value inst)

let prop_opt_monotone_in_duplication =
  qtest ~count:100 "optimum grows (weakly) when the instance is repeated"
    (instance_arb ~alts_max:2) (fun spec ->
        let inst = build_random spec in
        if Instance.n_requests inst = 0 then true
        else begin
          let double = Instance.concat [ inst; inst ] in
          let o1 = Offline.Opt.value inst and o2 = Offline.Opt.value double in
          o2 >= o1 && o2 <= 2 * o1 + Instance.n_requests inst
        end)

let prop_expanded_matching_is_valid =
  qtest ~count:150 "expanded_matching returns a valid maximum matching"
    (instance_arb ~alts_max:2) (fun spec ->
        let inst = build_random spec in
        let g, m = Offline.Opt.expanded_matching inst in
        Graph.Matching.is_valid g m
        && Graph.Matching.size m = Offline.Opt.grouped inst)

let prop_opt_koenig_certified =
  (* independent optimality certificate: a vertex cover of equal size
     proves the computed optimum maximum without re-trusting the solver *)
  qtest ~count:150 "offline optimum carries a Koenig certificate"
    (instance_arb ~alts_max:3) (fun spec ->
        let inst = build_random spec in
        let g, m = Offline.Opt.expanded_matching inst in
        Graph.Hopcroft_karp.is_koenig_certificate g m)

(* ------------------------------------------------------------------ *)
(* streaming optimum: differential tests against the exact solvers *)

(* curve sanity shared by every streaming test: monotone, per-round
   increments within the slot capacity, final value = the full optimum *)
let curve_well_formed inst curve =
  let n = inst.Instance.n_resources in
  let h = inst.Instance.horizon in
  Array.length curve = h
  && (h = 0 || curve.(h - 1) = Offline.Opt.expanded inst)
  && begin
    let ok = ref true in
    Array.iteri
      (fun r v ->
         let prev = if r = 0 then 0 else curve.(r - 1) in
         if v < prev || v - prev > n then ok := false)
      curve;
    !ok
  end

let prop_stream_equals_exact_solvers =
  qtest ~count:300 "Opt_stream = expanded = grouped (random instances)"
    (instance_arb ~alts_max:3) (fun spec ->
        let inst = build_random spec in
        let s = Offline.Opt_stream.value inst in
        s = Offline.Opt.expanded inst && s = Offline.Opt.grouped inst)

let workload_arb =
  QCheck.make
    QCheck.Gen.(
      int_range 1 6 >>= fun n ->
      int_range 1 4 >>= fun d ->
      int_range 1 25 >>= fun rounds ->
      int_range 0 10_000 >>= fun seed -> return (n, d, rounds, seed))
    ~print:(fun (n, d, rounds, seed) ->
        Printf.sprintf "n=%d d=%d rounds=%d seed=%d" n d rounds seed)

let build_workload (n, d, rounds, seed) =
  let rng = Rng.create ~seed in
  Adversary.Random_workload.make ~rng ~n ~d ~rounds ~load:1.2
    ~alternatives:(1 + (seed mod min 2 n))
    ()

let prop_stream_curve_on_workloads =
  qtest ~count:250 "Opt_stream prefix curve = naive recompute (workloads)"
    workload_arb (fun spec ->
        let inst = build_workload spec in
        let curve = Offline.Opt_stream.prefix_curve inst in
        curve = Offline.Opt_stream.naive_prefix_curve inst
        && curve_well_formed inst curve)

let test_stream_theorem_adversaries () =
  (* the fixed-instance theorem adversaries at small parameters, plus
     the adaptive Thm 2.6 instance realised against a real strategy *)
  let fixed =
    [
      ("thm2.1", (Adversary.Thm21.make ~d:3 ~phases:2).instance);
      ("thm2.2", (Adversary.Thm22.make ~ell:3 ~d:2 ~phases:2).instance);
      ("thm2.3", (Adversary.Thm23.make ~d:4 ~phases:2).instance);
      ("thm2.4", (Adversary.Thm24.make ~d:4 ~phases:2).instance);
      ("thm2.5", (Adversary.Thm25.make ~d:5 ~groups:2 ~intervals:2).instance);
      ("thm3.7", (fst (Adversary.Thm37.make ~d:2 ~intervals:2)).instance);
    ]
  in
  let adaptive =
    let adv = Adversary.Thm26.create ~d:3 ~phases:2 in
    let o =
      Sched.Engine.run_adaptive ~n:Adversary.Thm26.n_resources ~d:3
        ~last_arrival_round:(Adversary.Thm26.last_arrival_round ~d:3 ~phases:2)
        ~adversary:(Adversary.Thm26.adversary adv)
        (Strategies.Global.eager ())
    in
    ("thm2.6 (adaptive)", o.Sched.Outcome.instance)
  in
  List.iter
    (fun (name, inst) ->
       let expanded = Offline.Opt.expanded inst in
       check Alcotest.int (name ^ ": stream = expanded") expanded
         (Offline.Opt_stream.value inst);
       check Alcotest.int (name ^ ": grouped = expanded") expanded
         (Offline.Opt.grouped inst);
       let curve = Offline.Opt_stream.prefix_curve inst in
       check Alcotest.bool (name ^ ": curve well-formed") true
         (curve_well_formed inst curve);
       check Alcotest.bool (name ^ ": curve = naive") true
         (curve = Offline.Opt_stream.naive_prefix_curve inst))
    (adaptive :: fixed)

let test_stream_incremental_api () =
  (* feeding by hand matches of_instance, and opt/rounds/curve agree *)
  let inst = build_workload (3, 3, 12, 77) in
  let t = Offline.Opt_stream.create ~n_resources:3 () in
  check Alcotest.int "opt before any round" 0 (Offline.Opt_stream.opt t);
  for round = 0 to inst.Instance.horizon - 1 do
    let v = Offline.Opt_stream.feed t (Instance.arrivals_at inst round) in
    check Alcotest.int "feed returns running opt" (Offline.Opt_stream.opt t) v
  done;
  check Alcotest.int "rounds fed" inst.Instance.horizon
    (Offline.Opt_stream.rounds t);
  check Alcotest.(array int) "curve matches one-shot"
    (Offline.Opt_stream.prefix_curve inst)
    (Offline.Opt_stream.curve t);
  (* mistimed arrival is rejected *)
  match
    Offline.Opt_stream.feed t
      [| Sched.Request.make ~arrival:0 ~alternatives:[ 0 ] ~deadline:1 |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* König certification of the incremental matching at cut rounds: the
   tracker's matching must be maximum at every prefix, not just at the
   horizon, and the cover gives a solver-independent certificate *)
let certify_at_cuts inst =
  let h = inst.Instance.horizon in
  let cuts =
    List.sort_uniq compare
      (List.filter (fun c -> c > 0) [ 1; h / 4; h / 2; (3 * h) / 4; h ])
  in
  List.for_all
    (fun cut ->
       let t = Offline.Opt_stream.create ~n_resources:inst.Instance.n_resources () in
       for round = 0 to cut - 1 do
         ignore (Offline.Opt_stream.feed t (Instance.arrivals_at inst round) : int)
       done;
       let g = Offline.Opt_stream.graph t in
       let m = Offline.Opt_stream.matching t in
       Graph.Hopcroft_karp.is_koenig_certificate g m
       && List.length (fst (Graph.Hopcroft_karp.min_vertex_cover g m))
          + List.length (snd (Graph.Hopcroft_karp.min_vertex_cover g m))
          = Offline.Opt_stream.opt t)
    cuts

let test_stream_koenig_at_cut_rounds () =
  List.iter
    (fun inst ->
       check Alcotest.bool "certified at every cut" true (certify_at_cuts inst))
    [
      (Adversary.Thm21.make ~d:4 ~phases:3).instance;
      (Adversary.Thm23.make ~d:4 ~phases:2).instance;
      build_workload (4, 3, 20, 5);
    ]

let prop_stream_koenig_at_random_cuts =
  qtest ~count:100 "incremental matching Koenig-certified at cut rounds"
    workload_arb (fun spec -> certify_at_cuts (build_workload spec))

let test_opt_adversary_certified () =
  (* certify the optima of the adversarial instances used throughout *)
  List.iter
    (fun inst ->
       let g, m = Offline.Opt.expanded_matching inst in
       check Alcotest.bool "certificate" true
         (Graph.Hopcroft_karp.is_koenig_certificate g m))
    [
      (Adversary.Thm21.make ~d:4 ~phases:3).instance;
      (Adversary.Thm23.make ~d:4 ~phases:3).instance;
      (Adversary.Thm24.make ~d:4 ~phases:3).instance;
      (Adversary.Thm25.make ~d:5 ~groups:2 ~intervals:3).instance;
    ]

let () =
  Alcotest.run "offline"
    [
      ( "unit",
        [
          Alcotest.test_case "trivial" `Quick test_opt_trivial;
          Alcotest.test_case "block saturation" `Quick
            test_opt_block_saturation;
          Alcotest.test_case "ring blocks" `Quick test_opt_ring_block;
          Alcotest.test_case "empty" `Quick test_opt_empty;
          Alcotest.test_case "windows matter" `Quick test_opt_windows_matter;
          Alcotest.test_case "edf oracle" `Quick test_edf_oracle_simple;
          Alcotest.test_case "edf oracle validation" `Quick
            test_edf_oracle_rejects_two_alts;
          Alcotest.test_case "adversary optima certified" `Quick
            test_opt_adversary_certified;
        ] );
      ( "properties",
        [
          prop_grouped_equals_expanded;
          prop_edf_oracle_equals_matching;
          prop_opt_monotone_in_duplication;
          prop_expanded_matching_is_valid;
          prop_opt_koenig_certified;
        ] );
      ( "stream",
        [
          Alcotest.test_case "theorem adversaries" `Quick
            test_stream_theorem_adversaries;
          Alcotest.test_case "incremental api" `Quick
            test_stream_incremental_api;
          Alcotest.test_case "koenig at cut rounds" `Quick
            test_stream_koenig_at_cut_rounds;
          prop_stream_equals_exact_solvers;
          prop_stream_curve_on_workloads;
          prop_stream_koenig_at_random_cuts;
        ] );
    ]
