(* Tests for the data-server application layer: replica placement
   policies and trace generators. *)

module Placement = Dataserver.Placement
module Trace = Dataserver.Trace
module Rng = Prelude.Rng
module Instance = Sched.Instance
module Request = Sched.Request

let check = Alcotest.check
let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Placement *)

let distinct_copies p =
  let ok = ref true in
  for item = 0 to p.Placement.items - 1 do
    let ds = Placement.disks_of p item in
    if List.length (List.sort_uniq compare ds) <> List.length ds then
      ok := false;
    List.iter
      (fun d -> if d < 0 || d >= p.Placement.disks then ok := false)
      ds
  done;
  !ok

let test_placement_random () =
  let rng = Rng.create ~seed:3 in
  let p = Placement.random ~rng ~disks:6 ~items:50 ~copies:2 in
  check Alcotest.bool "copies distinct and in range" true (distinct_copies p);
  check Alcotest.int "two per item" 2
    (List.length (Placement.disks_of p 0))

let test_placement_partner () =
  let p = Placement.partner ~disks:5 ~items:12 ~copies:2 in
  check Alcotest.bool "distinct" true (distinct_copies p);
  check Alcotest.(list int) "item 0" [ 0; 1 ] (Placement.disks_of p 0);
  check Alcotest.(list int) "item 4 wraps" [ 4; 0 ] (Placement.disks_of p 4)

let test_placement_striped () =
  let p = Placement.striped ~disks:8 ~items:20 ~copies:2 in
  check Alcotest.bool "distinct" true (distinct_copies p);
  check Alcotest.(list int) "item 0 mirrored across" [ 0; 4 ]
    (Placement.disks_of p 0)

let test_placement_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Placement.partner ~disks:2 ~items:5 ~copies:3);
  expect_invalid (fun () -> Placement.partner ~disks:0 ~items:5 ~copies:1);
  let p = Placement.partner ~disks:3 ~items:4 ~copies:2 in
  expect_invalid (fun () -> Placement.disks_of p 99)

let test_placement_load_spread () =
  (* uniform popularity on the partner layout is perfectly even *)
  let p = Placement.partner ~disks:4 ~items:8 ~copies:2 in
  check (Alcotest.float 1e-9) "uniform popularity even" 1.0
    (Placement.load_spread p ~popularity:(fun _ -> 1.0));
  (* all popularity on one item: its two disks carry everything *)
  let spread =
    Placement.load_spread p ~popularity:(fun i -> if i = 0 then 1.0 else 0.0)
  in
  check (Alcotest.float 1e-9) "hot item concentrates" 2.0 spread

let prop_striped_distinct =
  qtest "striped placement keeps copies distinct for any shape"
    QCheck.(triple (int_range 2 10) (int_range 1 40) (int_range 2 4))
    (fun (disks, items, copies) ->
       QCheck.assume (copies <= disks);
       distinct_copies (Placement.striped ~disks ~items ~copies))

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_point_requests_shape () =
  let rng = Rng.create ~seed:7 in
  let p = Placement.partner ~disks:5 ~items:20 ~copies:2 in
  let inst =
    Trace.point_requests ~rng ~placement:p ~rounds:50 ~load:1.0 ~d:3 ()
  in
  check Alcotest.int "resources = disks" 5 inst.Instance.n_resources;
  check Alcotest.bool "nonempty" true (Instance.n_requests inst > 50);
  Array.iter
    (fun (r : Request.t) ->
       check Alcotest.int "two alternatives" 2
         (Array.length r.Request.alternatives);
       (* alternatives must be a placement pair *)
       let item_pairs =
         List.init 20 (fun i -> List.sort compare (Placement.disks_of p i))
       in
       check Alcotest.bool "alternatives from catalogue" true
         (List.mem
            (List.sort compare (Array.to_list r.Request.alternatives))
            item_pairs))
    inst.Instance.requests

let test_sessions_issue_per_round () =
  let rng = Rng.create ~seed:8 in
  let p = Placement.partner ~disks:4 ~items:10 ~copies:2 in
  let inst, stats =
    Trace.sessions ~rng ~placement:p ~rounds:60 ~arrivals_per_round:0.5
      ~mean_length:5 ~d:2 ()
  in
  check Alcotest.bool "some sessions" true (stats.Trace.started > 5);
  check Alcotest.bool "mean length near request" true
    (stats.Trace.mean_length >= 1.0);
  (* a session's requests are one per round: the busiest single pair of
     (arrival, alternatives) cannot exceed the session count by much --
     weak sanity only; the strong guarantee is arrival ordering, which
     Instance.build enforces *)
  check Alcotest.bool "nonempty" true (Instance.n_requests inst > 0)

let test_sessions_deterministic () =
  let make () =
    let rng = Rng.create ~seed:9 in
    let p = Placement.partner ~disks:4 ~items:10 ~copies:2 in
    let inst, stats =
      Trace.sessions ~rng ~placement:p ~rounds:40 ~arrivals_per_round:1.0
        ~mean_length:4 ~d:3 ()
    in
    (Instance.n_requests inst, stats.Trace.started)
  in
  check Alcotest.(pair int int) "deterministic" (make ()) (make ())

let test_sessions_hot_item_correlation () =
  (* extreme zipf: almost all sessions hit item 0, so nearly every
     request carries item 0's pair -- exactly the correlated traffic
     the adversarial model warns about *)
  let rng = Rng.create ~seed:10 in
  let p = Placement.partner ~disks:6 ~items:30 ~copies:2 in
  let inst, _ =
    Trace.sessions ~rng ~placement:p ~rounds:80 ~arrivals_per_round:2.0
      ~mean_length:6 ~d:3 ~zipf:3.0 ()
  in
  let hot_pair = List.sort compare (Placement.disks_of p 0) in
  let hits =
    Array.fold_left
      (fun acc (r : Request.t) ->
         if List.sort compare (Array.to_list r.Request.alternatives) = hot_pair
         then acc + 1
         else acc)
      0 inst.Instance.requests
  in
  check Alcotest.bool "hot pair dominates" true
    (2 * hits > Instance.n_requests inst)

(* Replay the generator's RNG draws (poisson newcomers, then zipf item
   and geometric length per session — the documented draw order) and
   check the published session_stats and the instance size against the
   independent count, across seeds. *)
let test_sessions_stats_agree () =
  List.iter
    (fun seed ->
       let rounds = 70 and arrivals_per_round = 1.3 and mean_length = 6 in
       let disks = 5 and items = 17 in
       let gen () = Placement.partner ~disks ~items ~copies:2 in
       let inst, stats =
         Trace.sessions
           ~rng:(Rng.create ~seed)
           ~placement:(gen ()) ~rounds ~arrivals_per_round ~mean_length ~d:3
           ()
       in
       let rng = Rng.create ~seed in
       let started = ref 0 and total_length = ref 0 and events = ref 0 in
       for round = 0 to rounds - 1 do
         let newcomers = Rng.poisson rng ~lambda:arrivals_per_round in
         for _ = 1 to newcomers do
           incr started;
           ignore (Rng.zipf rng ~n:items ~s:1.0);
           let length =
             1 + Rng.geometric rng ~p:(1.0 /. float_of_int mean_length)
           in
           total_length := !total_length + length;
           events := !events + min length (rounds - round)
         done
       done;
       check Alcotest.int
         (Printf.sprintf "started (seed %d)" seed)
         !started stats.Trace.started;
       check
         (Alcotest.float 1e-9)
         (Printf.sprintf "mean_length (seed %d)" seed)
         (if !started = 0 then 0.0
          else float_of_int !total_length /. float_of_int !started)
         stats.Trace.mean_length;
       (* every untruncated per-round event becomes exactly one request *)
       check Alcotest.int
         (Printf.sprintf "request count (seed %d)" seed)
         !events (Instance.n_requests inst))
    [ 1; 2; 3; 17; 42; 1999 ]

let test_trace_validation () =
  let rng = Rng.create ~seed:0 in
  let p = Placement.partner ~disks:2 ~items:2 ~copies:1 in
  (match Trace.point_requests ~rng ~placement:p ~rounds:0 ~load:1.0 ~d:1 () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "rounds=0 accepted");
  match
    Trace.sessions ~rng ~placement:p ~rounds:5 ~arrivals_per_round:1.0
      ~mean_length:0 ~d:1 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mean_length=0 accepted"

let () =
  Alcotest.run "dataserver"
    [
      ( "placement",
        [
          Alcotest.test_case "random" `Quick test_placement_random;
          Alcotest.test_case "partner" `Quick test_placement_partner;
          Alcotest.test_case "striped" `Quick test_placement_striped;
          Alcotest.test_case "validation" `Quick test_placement_validation;
          Alcotest.test_case "load spread" `Quick test_placement_load_spread;
          prop_striped_distinct;
        ] );
      ( "trace",
        [
          Alcotest.test_case "point requests" `Quick test_point_requests_shape;
          Alcotest.test_case "sessions" `Quick test_sessions_issue_per_round;
          Alcotest.test_case "deterministic" `Quick test_sessions_deterministic;
          Alcotest.test_case "hot item correlation" `Quick
            test_sessions_hot_item_correlation;
          Alcotest.test_case "stats agree with direct counts" `Quick
            test_sessions_stats_agree;
          Alcotest.test_case "validation" `Quick test_trace_validation;
        ] );
    ]
