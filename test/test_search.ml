(* Tests for the worst-case search layer: exhaustive game-tree tier
   (Table-1 rediscovery, budget monotonicity, canonicalization),
   certificates (accept emitted / reject perturbed) and the guided
   attacker doubling as the kernel-vs-rebuild differential fuzzer. *)

module Move = Search.Move
module Game = Search.Game
module Cert = Search.Certificate
module Exh = Search.Exhaustive
module Att = Search.Attacker
module Rat = Prelude.Rat

let check = Alcotest.check

let qcheck ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let rat = Alcotest.testable Rat.pp Rat.equal

(* ------------------------------------------------------------------ *)
(* move vocabulary *)

let test_tag_strings () =
  List.iter
    (fun t ->
       match Move.tag_of_string (Move.tag_to_string t) with
       | Ok t' ->
         check Alcotest.bool (Move.tag_to_string t) true (t = t')
       | Error e -> Alcotest.failf "tag round-trip: %s" e)
    [ Move.Neutral; Move.Late; Move.Early; Move.Prefer 0; Move.Prefer 3 ]

let test_multisets_prefix_stable () =
  (* the property the budget-monotonicity of the search rests on *)
  let ts =
    Move.types ~n:2 ~k:2 ~deadlines:[ 1 ] ~tags:[ Move.Neutral; Move.Late ]
  in
  let m2 = Move.multisets ts ~max:2 and m3 = Move.multisets ts ~max:3 in
  check Alcotest.bool "multisets ~max:2 is a prefix of ~max:3" true
    (List.length m3 > List.length m2
     && List.for_all2 (fun a b -> a = b) m2
          (List.filteri (fun i _ -> i < List.length m2) m3))

(* ------------------------------------------------------------------ *)
(* exhaustive tier: the acceptance criterion of the whole layer *)

let run_fix ~d =
  let strat =
    match Game.strategy_of_name "fix" with
    | Ok s -> s
    | Error e -> Alcotest.failf "strategy_of_name: %s" e
  in
  Exh.run ~strategy:strat (Exh.config ~n:2 ~d ())

let test_fix_rediscovers_table1 () =
  (* d = 1: every strategy is per-round optimal, the true value is 1 *)
  let r1 = run_fix ~d:1 in
  (match r1.Exh.best with
   | Some f -> check rat "d=1 value" (Rat.make 1 1) f.Exh.ratio
   | None -> Alcotest.fail "d=1: empty tree");
  check Alcotest.int "d=1: no solver disagreements" 0
    (List.length r1.Exh.disagreements);
  (* d = 2: the search must rediscover the Table-1 bound 2 - 1/d *)
  let r2 = run_fix ~d:2 in
  (match r2.Exh.best with
   | Some f ->
     check rat "d=2 value is fix_lb" (Analysis.Bounds.fix_lb ~d:2)
       f.Exh.ratio;
     check Alcotest.int "d=2 witness opt" 3 f.Exh.opt;
     check Alcotest.int "d=2 witness alg" 2 f.Exh.alg
   | None -> Alcotest.fail "d=2: empty tree");
  check Alcotest.int "d=2: no solver disagreements" 0
    (List.length r2.Exh.disagreements);
  (* and its certificate replays *)
  match Exh.certificate r2 with
  | None -> Alcotest.fail "d=2: no certificate"
  | Some c ->
    (match Cert.check c with
     | Ok () -> ()
     | Error e -> Alcotest.failf "certificate rejected: %s" e)

let test_verdicts () =
  let lb = Analysis.Bounds.fix_lb ~d:2 in
  check Alcotest.bool "exact rediscovery" true
    (String.length (Exh.verdict ~d:2 ~strategy_name:"A_fix" lb) > 0
     && Exh.verdict ~d:2 ~strategy_name:"A_fix" lb
        = Printf.sprintf "rediscovered Table-1 lower bound exactly (lb %s)"
            (Rat.to_string lb));
  (* beyond the proven upper bound is the one impossible outcome *)
  let v = Exh.verdict ~d:2 ~strategy_name:"A_fix" (Rat.make 5 1) in
  check Alcotest.bool "above ub flagged" true
    (String.length v >= 7 && String.sub v 0 7 = "EXCEEDS")

let test_config_validation () =
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  let strategy =
    match Game.strategy_of_name "fix" with
    | Ok s -> s
    | Error e -> Alcotest.failf "strategy_of_name: %s" e
  in
  let run cfg = ignore (Exh.run ~strategy cfg) in
  expect_invalid "n=5" (fun () -> run (Exh.config ~n:5 ~d:2 ()));
  expect_invalid "d=4" (fun () -> run (Exh.config ~n:2 ~d:4 ()));
  expect_invalid "budget=7" (fun () ->
      run (Exh.config ~budget:7 ~n:2 ~d:2 ()));
  expect_invalid "k=3" (fun () -> run (Exh.config ~k:3 ~n:3 ~d:2 ()));
  expect_invalid "deadline beyond d" (fun () ->
      run (Exh.config ~deadlines:[ 3 ] ~n:2 ~d:2 ()));
  expect_invalid "Prefer out of range" (fun () ->
      run (Exh.config ~tags:[ Move.Prefer 2 ] ~n:2 ~d:2 ()))

(* ------------------------------------------------------------------ *)
(* qcheck: search value is monotone in the request budget *)

let small_cfg ~d ~budget =
  Exh.config ~budget ~per_round:2 ~tags:[ Move.Neutral; Move.Late ] ~n:2 ~d
    ()

let prop_budget_monotone =
  qcheck ~count:12 "search value monotone in budget"
    QCheck.(pair (int_range 1 2) (int_range 1 3))
    (fun (d, budget) ->
       let strategy =
         match Game.strategy_of_name "fix" with
         | Ok s -> s
         | Error _ -> assert false
       in
       let value b =
         match (Exh.run ~strategy (small_cfg ~d ~budget:b)).Exh.best with
         | Some f -> f.Exh.ratio
         | None -> Rat.make 0 1
       in
       Rat.compare (value budget) (value (budget + 1)) <= 0)

(* ------------------------------------------------------------------ *)
(* qcheck: canonical key is invariant under resource relabeling *)

let perms3 =
  [| [| 0; 1; 2 |]; [| 0; 2; 1 |]; [| 1; 0; 2 |]; [| 1; 2; 0 |];
     [| 2; 0; 1 |]; [| 2; 1; 0 |] |]

let tag_gen n =
  QCheck.Gen.(
    frequency
      [ (3, return Move.Neutral); (1, return Move.Late);
        (1, return Move.Early);
        (2, map (fun r -> Move.Prefer r) (int_range 0 (n - 1))) ])

let rtype_gen n =
  QCheck.Gen.(
    int_range 1 2 >>= fun size ->
    list_size (return size) (int_range 0 (n - 1)) >>= fun alts ->
    int_range 1 2 >>= fun deadline ->
    tag_gen n >>= fun tag ->
    return (Move.rtype ~alts ~deadline ~tag))

let prefix_gen n =
  QCheck.Gen.(
    list_size (int_range 0 2) (list_size (int_range 0 2) (rtype_gen n))
    >>= fun rows ->
    rtype_gen n >>= fun last -> return (rows @ [ [ last ] ]))

let print_prefix p =
  String.concat "|"
    (List.map (fun row -> String.concat ";" (List.map Move.encode row)) p)

let prop_canonical_relabel =
  qcheck ~count:100 "canonical key invariant under relabeling"
    (QCheck.make
       QCheck.Gen.(pair (prefix_gen 3) (int_range 0 5))
       ~print:(fun (p, i) -> Printf.sprintf "%s perm#%d" (print_prefix p) i))
    (fun (prefix, i) ->
       let perm = perms3.(i) in
       let relabeled =
         List.map (List.map (Move.relabel ~perm)) prefix
       in
       String.equal
         (Game.canonical_key ~n:3 prefix)
         (Game.canonical_key ~n:3 relabeled))

(* ------------------------------------------------------------------ *)
(* qcheck: certificates accept what was emitted, reject perturbations *)

let prop_certificate =
  qcheck ~count:40 "certificate accepts emitted, rejects perturbed"
    (QCheck.make (prefix_gen 2) ~print:print_prefix)
    (fun prefix ->
       let strategy =
         match Game.strategy_of_name "fix" with
         | Ok s -> s
         | Error _ -> assert false
       in
       let e = Game.evaluate strategy ~n:2 ~d:2 prefix in
       if e.Game.alg = 0 then QCheck.assume_fail ()
       else begin
         let c =
           Cert.of_prefix ~strategy ~n:2 ~d:2 ~opt:e.Game.opt
             ~alg:e.Game.alg prefix
         in
         (* the emitted certificate replays cleanly *)
         (match Cert.check c with
          | Ok () -> ()
          | Error err -> QCheck.Test.fail_reportf "rejected: %s" err);
         (* render/parse is the identity *)
         (match Cert.parse (Cert.render c) with
          | Ok c' ->
            if not (String.equal (Cert.render c) (Cert.render c')) then
              QCheck.Test.fail_reportf "render/parse drift"
          | Error err -> QCheck.Test.fail_reportf "parse: %s" err);
         (* perturbing either claim must be caught by the replay *)
         let perturbed_opt =
           Cert.v ~strategy:c.Cert.strategy ~opt:(c.Cert.opt + 1)
             ~alg:c.Cert.alg ~tags:c.Cert.tags c.Cert.instance
         in
         let perturbed_alg =
           Cert.v ~strategy:c.Cert.strategy ~opt:c.Cert.opt
             ~alg:(c.Cert.alg + 1) ~tags:c.Cert.tags c.Cert.instance
         in
         (match Cert.check perturbed_opt with
          | Ok () -> QCheck.Test.fail_reportf "perturbed opt accepted"
          | Error _ -> ());
         (match Cert.check perturbed_alg with
          | Ok () -> QCheck.Test.fail_reportf "perturbed alg accepted"
          | Error _ -> ());
         true
       end)

(* ------------------------------------------------------------------ *)
(* golden snapshot: the exhaustive quick table *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_path () =
  (* cwd is test/ under `dune runtest` (the dep is copied next to the
     executable) but the project root under a bare `dune exec` *)
  List.find_opt Sys.file_exists
    [ "golden_search_quick.txt";
      Filename.concat "test" "golden_search_quick.txt" ]

let test_golden_search_quick () =
  let expected =
    match golden_path () with
    | Some p -> read_file p
    | None -> Alcotest.fail "golden_search_quick.txt not found"
  in
  let got = Exh.golden_table ~n:2 ~ds:[ 1; 2 ] () in
  if got <> expected then
    Alcotest.failf
      "Exhaustive search table drifted from test/golden_search_quick.txt.\n\
       If the change is intended, regenerate with:\n\
      \  dune exec bin/reqsched.exe -- search --strategy all --budget \
       exhaustive --golden > test/golden_search_quick.txt\n\
       --- expected ---\n%s--- got ---\n%s"
      expected got

(* ------------------------------------------------------------------ *)
(* fuzz-differential tier: the attacker as a kernel/rebuild fuzzer *)

let save_repro cert =
  let path = Filename.temp_file "search-disagreement-" ".cert" in
  Cert.save ~path cert;
  path

let test_fuzz_differential () =
  (* >= 200 seeded instances per strategy, every one a kernel-vs-
     rebuild agreement check; a disagreement leaves an rsp/1 repro *)
  List.iter
    (fun key ->
       let strategy =
         match Game.strategy_of_name key with
         | Ok s -> s
         | Error e -> Alcotest.failf "strategy_of_name: %s" e
       in
       let cfg = Att.config ~seed:7 ~restarts:4 ~evals:25 ~n:4 ~d:3 () in
       let r = Att.run ~strategy cfg in
       check Alcotest.bool
         (Printf.sprintf "%s: >= 200 instances (got %d)" key r.Att.instances)
         true (r.Att.instances >= 200);
       (match r.Att.disagreements with
        | [] -> ()
        | c :: _ ->
          Alcotest.failf
            "%s: kernel and rebuild disagreed on %d instance(s); repro \
             saved to %s"
            key
            (List.length r.Att.disagreements)
            (save_repro c));
       (* the best construction's certificate is independently valid *)
       match Cert.check r.Att.certificate with
       | Ok () -> ()
       | Error e -> Alcotest.failf "%s: attacker certificate: %s" key e)
    [ "fix"; "balance" ]

let test_attacker_deterministic () =
  let strategy =
    match Game.strategy_of_name "eager" with
    | Ok s -> s
    | Error e -> Alcotest.failf "strategy_of_name: %s" e
  in
  let cfg = Att.config ~seed:3 ~restarts:2 ~evals:15 ~n:3 ~d:2 () in
  let a = Att.run ~strategy cfg and b = Att.run ~strategy cfg in
  check rat "same best rate" a.Att.best_rate b.Att.best_rate;
  check Alcotest.string "same certificate"
    (Cert.render a.Att.certificate)
    (Cert.render b.Att.certificate)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "search"
    [
      ( "moves",
        [
          Alcotest.test_case "tag strings round-trip" `Quick test_tag_strings;
          Alcotest.test_case "multisets prefix-stable" `Quick
            test_multisets_prefix_stable;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "fix rediscovers Table 1" `Quick
            test_fix_rediscovers_table1;
          Alcotest.test_case "verdicts" `Quick test_verdicts;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          prop_budget_monotone;
        ] );
      ( "canonicalization", [ prop_canonical_relabel ] );
      ( "certificates", [ prop_certificate ] );
      ( "golden",
        [ Alcotest.test_case "quick table snapshot" `Slow
            test_golden_search_quick ] );
      ( "fuzz differential",
        [
          Alcotest.test_case "200+ instances, zero disagreements" `Slow
            test_fuzz_differential;
          Alcotest.test_case "attacker deterministic" `Quick
            test_attacker_deterministic;
        ] );
    ]
