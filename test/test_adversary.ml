(* Tests for the adversarial constructions: block structure, exact
   optima, and for every lower-bound theorem the exact agreement of the
   simulated strategy with the proof's counting. *)

module Instance = Sched.Instance
module Request = Sched.Request
module Engine = Sched.Engine
module Global = Strategies.Global
module Rat = Prelude.Rat

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* blocks *)

let test_block_pair () =
  let reqs = Adversary.Block.pair ~arrival:2 ~r0:1 ~r1:3 ~d:4 in
  check Alcotest.int "2d requests" 8 (List.length reqs);
  List.iter
    (fun (r : Request.t) ->
       check Alcotest.int "arrival" 2 r.Request.arrival;
       check Alcotest.int "deadline" 4 r.Request.deadline;
       check Alcotest.bool "alts" true
         (Request.has_alternative r 1 && Request.has_alternative r 3))
    reqs

let test_block_ring () =
  let reqs =
    Adversary.Block.ring ~arrival:0 ~resources:[| 0; 1; 2 |] ~d:2
  in
  check Alcotest.int "a*d requests" 6 (List.length reqs);
  (* ring pairs: (0,1) (1,2) (2,0), two each *)
  let count pair =
    List.length
      (List.filter
         (fun (r : Request.t) -> Array.to_list r.Request.alternatives = pair)
         reqs)
  in
  check Alcotest.int "(0,1)" 2 (count [ 0; 1 ]);
  check Alcotest.int "(1,2)" 2 (count [ 1; 2 ]);
  check Alcotest.int "(2,0)" 2 (count [ 2; 0 ])

let test_block_one () =
  let reqs = Adversary.Block.one ~arrival:1 ~anchor:5 ~target:2 ~d:3 in
  check Alcotest.int "d requests" 3 (List.length reqs);
  List.iter
    (fun (r : Request.t) ->
       check Alcotest.int "first alternative is the target" 2
         r.Request.alternatives.(0))
    reqs

let test_ring_needs_two () =
  match Adversary.Block.ring ~arrival:0 ~resources:[| 0 |] ~d:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)
(* scenario exactness: computed optimum = analytic hint, strategy
   performance = analytic hint *)

let run_scenario_exact name (sc : Adversary.Scenario.t) factory =
  let opt = Offline.Opt.value sc.instance in
  (match sc.opt_hint with
   | Some hint ->
     check Alcotest.int (name ^ ": analytic optimum") hint opt
   | None -> ());
  let o = Engine.run sc.instance factory in
  (match sc.alg_hint with
   | Some hint ->
     check Alcotest.int (name ^ ": analytic strategy count") hint
       o.Sched.Outcome.served
   | None -> ());
  (opt, o.Sched.Outcome.served)

let test_thm21_exact () =
  List.iter
    (fun (d, phases) ->
       let sc = Adversary.Thm21.make ~d ~phases in
       ignore
         (run_scenario_exact
            (Printf.sprintf "thm21 d=%d" d)
            sc
            (Global.fix ~bias:sc.bias ())))
    [ (2, 4); (3, 3); (4, 5); (6, 2) ]

let test_thm22_exact_opt () =
  List.iter
    (fun (ell, d) ->
       let sc = Adversary.Thm22.make ~ell ~d ~phases:2 in
       let opt = Offline.Opt.value sc.instance in
       check Alcotest.int "thm22 optimum" (2 * ell * d) opt;
       (* strategy performance within the drain model's boundary slack *)
       let o = Engine.run sc.instance (Global.current ~bias:sc.bias ()) in
       let reference =
         2 * Adversary.Thm22.alg_lower_bound_per_phase ~ell ~d
       in
       check Alcotest.bool
         (Printf.sprintf "thm22 ell=%d within slack (got %d, ref %d)" ell
            o.Sched.Outcome.served reference)
         true
         (abs (o.Sched.Outcome.served - reference) <= 2 * ell))
    [ (3, 6); (4, 12) ]

let test_thm23_exact () =
  List.iter
    (fun (d, phases) ->
       let sc = Adversary.Thm23.make ~d ~phases in
       ignore
         (run_scenario_exact
            (Printf.sprintf "thm23 d=%d" d)
            sc
            (Global.fix_balance ~bias:sc.bias ())))
    [ (2, 4); (4, 4); (6, 3) ]

let test_thm24_exact () =
  List.iter
    (fun (d, phases) ->
       let sc = Adversary.Thm24.make ~d ~phases in
       ignore
         (run_scenario_exact
            (Printf.sprintf "thm24 d=%d" d)
            sc
            (Global.eager ~bias:sc.bias ())))
    [ (2, 4); (4, 4); (6, 3) ]

let test_thm25_exact () =
  List.iter
    (fun (d, groups, intervals) ->
       let sc = Adversary.Thm25.make ~d ~groups ~intervals in
       ignore
         (run_scenario_exact
            (Printf.sprintf "thm25 d=%d g=%d" d groups)
            sc
            (Global.balance ~bias:sc.bias ())))
    [ (2, 2, 3); (5, 2, 4); (5, 4, 3); (8, 2, 3) ]

let test_thm37_exact () =
  List.iter
    (fun (d, intervals) ->
       let sc, priority = Adversary.Thm37.make ~d ~intervals in
       let factory = Localstrat.Local.fix ~priority () in
       ignore (run_scenario_exact (Printf.sprintf "thm37 d=%d" d) sc factory))
    [ (2, 3); (4, 4); (6, 2) ]

(* ------------------------------------------------------------------ *)
(* Table-1 d-sweeps: the per-phase delta rate of each construction,
   pinned to the exact Table-1 rational at every d in a small sweep.
   Running at k and k+1 phases and taking (Δopt)/(Δalg) cancels the
   boundary effects the asymptotic bounds allow for, so the comparison
   is exact equality, not an inequality. *)

let rat = Alcotest.testable Rat.pp Rat.equal

let lookup_lb ~d name =
  match
    List.find_map
      (fun (row, lb, _) -> if String.equal row name then lb else None)
      (Analysis.Bounds.table1 ~d)
  with
  | Some lb -> lb
  | None -> Alcotest.failf "no Table-1 lower bound for %s at d=%d" name d

let phase_rate mk k =
  let opt1, alg1 = mk k and opt2, alg2 = mk (k + 1) in
  Rat.make (opt2 - opt1) (alg2 - alg1)

let test_thm21_d_sweep () =
  List.iter
    (fun d ->
       let rate =
         phase_rate
           (fun phases ->
              let sc = Adversary.Thm21.make ~d ~phases in
              run_scenario_exact
                (Printf.sprintf "thm21 sweep d=%d k=%d" d phases)
                sc
                (Global.fix ~bias:sc.bias ()))
           2
       in
       check rat
         (Printf.sprintf "thm21 d=%d rate = A_fix lb" d)
         (lookup_lb ~d "A_fix") rate;
       check rat
         (Printf.sprintf "thm21 d=%d rate = 2 - 1/d" d)
         (Analysis.Bounds.fix_lb ~d) rate)
    [ 2; 3; 4; 5; 6 ]

let test_thm23_d_sweep () =
  (* even d >= 4 only: at d = 2 Table 1 takes the stronger 4/3 from
     Theorem 2.4, not this construction's 3d/(2d+2) = 1 *)
  List.iter
    (fun d ->
       let rate =
         phase_rate
           (fun phases ->
              let sc = Adversary.Thm23.make ~d ~phases in
              run_scenario_exact
                (Printf.sprintf "thm23 sweep d=%d k=%d" d phases)
                sc
                (Global.fix_balance ~bias:sc.bias ()))
           2
       in
       check rat
         (Printf.sprintf "thm23 d=%d rate = A_fix_balance lb" d)
         (lookup_lb ~d "A_fix_balance") rate;
       check rat
         (Printf.sprintf "thm23 d=%d rate = 3d/(2d+2)" d)
         (Analysis.Bounds.fix_balance_lb ~d) rate)
    [ 4; 6; 8 ]

let test_thm24_d_sweep () =
  List.iter
    (fun d ->
       let rate =
         phase_rate
           (fun phases ->
              let sc = Adversary.Thm24.make ~d ~phases in
              run_scenario_exact
                (Printf.sprintf "thm24 sweep d=%d k=%d" d phases)
                sc
                (Global.eager ~bias:sc.bias ()))
           2
       in
       check rat
         (Printf.sprintf "thm24 d=%d rate = A_eager lb = 4/3" d)
         Analysis.Bounds.eager_lb rate)
    [ 2; 4; 6 ]

let test_thm24_d2_all_strategies () =
  (* at d = 2 the same construction also forces A_current,
     A_fix_balance and A_balance to 4/3 — exactly their Table-1 rows *)
  List.iter
    (fun (name, mk) ->
       let rate =
         phase_rate
           (fun phases ->
              let sc = Adversary.Thm24.make ~d:2 ~phases in
              let opt = Offline.Opt.value sc.instance in
              let o = Engine.run sc.instance (mk ~bias:sc.bias) in
              (opt, o.Sched.Outcome.served))
           2
       in
       check rat
         (Printf.sprintf "thm24 d=2 forces %s to its Table-1 lb" name)
         (lookup_lb ~d:2 name) rate)
    [ ("A_current", fun ~bias -> Global.current ~bias ());
      ("A_fix_balance", fun ~bias -> Global.fix_balance ~bias ());
      ("A_balance", fun ~bias -> Global.balance ~bias ()) ]

let test_thm25_d_sweep () =
  (* the interval-delta rate is diluted by the anchor-maintenance
     traffic (served in full by both sides), so it sits strictly below
     (5d+2)/(4d+1) and climbs toward it as the group count grows *)
  List.iter
    (fun d ->
       let rate_at groups =
         phase_rate
           (fun intervals ->
              let sc = Adversary.Thm25.make ~d ~groups ~intervals in
              run_scenario_exact
                (Printf.sprintf "thm25 sweep d=%d g=%d k=%d" d groups
                   intervals)
                sc
                (Global.balance ~bias:sc.bias ()))
           2
       in
       let lo = rate_at 2 and hi = rate_at 6 in
       let lb = Analysis.Bounds.balance_lb ~d in
       check Alcotest.bool
         (Printf.sprintf
            "thm25 d=%d rate grows with groups (%s < %s <= lb %s)" d
            (Rat.to_string lo) (Rat.to_string hi) (Rat.to_string lb))
         true
         (Rat.compare lo hi < 0 && Rat.compare hi lb <= 0))
    [ 2; 5; 8 ]

let test_thm37_d_sweep () =
  List.iter
    (fun d ->
       let rate =
         phase_rate
           (fun intervals ->
              let sc, priority = Adversary.Thm37.make ~d ~intervals in
              run_scenario_exact
                (Printf.sprintf "thm37 sweep d=%d k=%d" d intervals)
                sc
                (Localstrat.Local.fix ~priority ()))
           2
       in
       check rat
         (Printf.sprintf "thm37 d=%d rate = 2 exactly" d)
         Analysis.Bounds.local_fix_ratio rate)
    [ 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* theorem parameter validation *)

let test_parameter_validation () =
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect_invalid "thm21 d=1" (fun () -> Adversary.Thm21.make ~d:1 ~phases:1);
  expect_invalid "thm22 bad divisibility" (fun () ->
      Adversary.Thm22.make ~ell:4 ~d:10 ~phases:1);
  expect_invalid "thm23 odd d" (fun () -> Adversary.Thm23.make ~d:3 ~phases:1);
  expect_invalid "thm24 odd d" (fun () -> Adversary.Thm24.make ~d:5 ~phases:1);
  expect_invalid "thm25 d not 3x-1" (fun () ->
      Adversary.Thm25.make ~d:4 ~groups:1 ~intervals:1);
  expect_invalid "thm26 d not multiple of 3" (fun () ->
      Adversary.Thm26.create ~d:4 ~phases:1)

(* ------------------------------------------------------------------ *)
(* Thm 2.6: adaptive adversary *)

let test_thm26_opt_and_bound () =
  (* the bound is asymptotic (competitive ratio allows an additive
     constant); the doubling difference between phases and 2*phases
     cancels it exactly *)
  let d = 6 and phases = 3 in
  let run mk k =
    let adv = Adversary.Thm26.create ~d ~phases:k in
    let o =
      Engine.run_adaptive ~n:Adversary.Thm26.n_resources ~d
        ~last_arrival_round:(Adversary.Thm26.last_arrival_round ~d ~phases:k)
        ~adversary:(Adversary.Thm26.adversary adv)
        (mk ?bias:None ())
    in
    let opt = Offline.Opt.value o.Sched.Outcome.instance in
    check Alcotest.int "optimum serves everything"
      (Adversary.Thm26.opt_expected ~d ~phases:k)
      opt;
    (opt, o.Sched.Outcome.served)
  in
  List.iter
    (fun (name, mk) ->
       let opt1, alg1 = run mk phases in
       let opt2, alg2 = run mk (2 * phases) in
       let bound = Analysis.Bounds.universal_lb_finite ~d in
       check Alcotest.bool
         (Printf.sprintf "%s: per-phase ratio %d/%d above the finite bound"
            name (opt2 - opt1) (alg2 - alg1))
         true
         Rat.(make (opt2 - opt1) (alg2 - alg1) >= bound))
    Global.all

let test_thm26_adapts () =
  (* the adversary must pick different colours for strategies that
     leave different colours unserved; at minimum, two runs against the
     same strategy are identical (determinism) *)
  let d = 3 and phases = 2 in
  let run () =
    let adv = Adversary.Thm26.create ~d ~phases in
    let o =
      Engine.run_adaptive ~n:Adversary.Thm26.n_resources ~d
        ~last_arrival_round:(Adversary.Thm26.last_arrival_round ~d ~phases)
        ~adversary:(Adversary.Thm26.adversary adv)
        (Global.eager ())
    in
    (o.Sched.Outcome.served, Instance.n_requests o.Sched.Outcome.instance)
  in
  check Alcotest.(pair int int) "deterministic" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* periodicity: every fixed-scenario adversary reaches a steady state *)

let test_scenarios_reach_steady_state () =
  let cases =
    [
      ( "thm21",
        Adversary.Thm21.make ~d:4 ~phases:6,
        (fun (sc : Adversary.Scenario.t) ->
           Strategies.Global.fix ~bias:sc.bias ()),
        4 );
      ( "thm24",
        Adversary.Thm24.make ~d:4 ~phases:6,
        (fun (sc : Adversary.Scenario.t) ->
           Strategies.Global.eager ~bias:sc.bias ()),
        4 );
      ( "thm37",
        fst (Adversary.Thm37.make ~d:4 ~intervals:6),
        (fun _ -> Strategies.Global.fix ()),
        4 );
    ]
  in
  List.iter
    (fun (name, (sc : Adversary.Scenario.t), mk, period) ->
       let o = Engine.run sc.instance (mk sc) in
       match Analysis.Ledger.steady_state o ~period with
       | Some _ -> ()
       | None -> Alcotest.failf "%s: no steady state at period %d" name period)
    cases

(* ------------------------------------------------------------------ *)
(* random workloads *)

let test_random_workload_shapes () =
  let rng = Prelude.Rng.create ~seed:5 in
  let inst =
    Adversary.Random_workload.make ~rng ~n:6 ~d:3 ~rounds:50 ~load:1.0 ()
  in
  check Alcotest.bool "nonempty" true (Instance.n_requests inst > 100);
  Array.iter
    (fun (r : Request.t) ->
       check Alcotest.int "two alternatives" 2
         (Array.length r.Request.alternatives);
       check Alcotest.int "deadline d" 3 r.Request.deadline)
    inst.Instance.requests

let test_random_workload_determinism () =
  let mk () =
    let rng = Prelude.Rng.create ~seed:9 in
    Adversary.Random_workload.make ~rng ~n:4 ~d:2 ~rounds:30 ~load:0.8 ()
  in
  let a = mk () and b = mk () in
  check Alcotest.int "same size" (Instance.n_requests a)
    (Instance.n_requests b)

let test_random_workload_zipf_skew () =
  let rng = Prelude.Rng.create ~seed:3 in
  let inst =
    Adversary.Random_workload.make ~rng ~n:8 ~d:3 ~rounds:200 ~load:1.0
      ~profile:(Adversary.Random_workload.Zipf 1.5) ()
  in
  (* resource 0 must be named far more often than resource 7 *)
  let counts = Array.make 8 0 in
  Array.iter
    (fun (r : Request.t) ->
       Array.iter
         (fun res -> counts.(res) <- counts.(res) + 1)
         r.Request.alternatives)
    inst.Instance.requests;
  check Alcotest.bool "skewed" true (counts.(0) > 3 * counts.(7))

let test_random_workload_mixed_deadlines () =
  let rng = Prelude.Rng.create ~seed:4 in
  let inst =
    Adversary.Random_workload.make_mixed_deadlines ~rng ~n:4 ~d:4 ~rounds:80
      ~load:1.0 ()
  in
  let deadlines = Hashtbl.create 4 in
  Array.iter
    (fun (r : Request.t) -> Hashtbl.replace deadlines r.Request.deadline ())
    inst.Instance.requests;
  check Alcotest.bool "several distinct deadlines" true
    (Hashtbl.length deadlines >= 3)

let test_random_workload_validation () =
  let rng = Prelude.Rng.create ~seed:0 in
  match
    Adversary.Random_workload.make ~rng ~n:2 ~d:2 ~rounds:5 ~load:1.0
      ~alternatives:3 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let () =
  Alcotest.run "adversary"
    [
      ( "blocks",
        [
          Alcotest.test_case "pair" `Quick test_block_pair;
          Alcotest.test_case "ring" `Quick test_block_ring;
          Alcotest.test_case "one" `Quick test_block_one;
          Alcotest.test_case "ring needs two" `Quick test_ring_needs_two;
        ] );
      ( "theorem exactness",
        [
          Alcotest.test_case "thm 2.1" `Quick test_thm21_exact;
          Alcotest.test_case "thm 2.2" `Quick test_thm22_exact_opt;
          Alcotest.test_case "thm 2.3" `Quick test_thm23_exact;
          Alcotest.test_case "thm 2.4" `Quick test_thm24_exact;
          Alcotest.test_case "thm 2.5" `Quick test_thm25_exact;
          Alcotest.test_case "thm 3.7" `Quick test_thm37_exact;
          Alcotest.test_case "parameter validation" `Quick
            test_parameter_validation;
        ] );
      ( "table-1 d-sweeps",
        [
          Alcotest.test_case "thm 2.1: 2 - 1/d" `Quick test_thm21_d_sweep;
          Alcotest.test_case "thm 2.3: 3d/(2d+2)" `Quick test_thm23_d_sweep;
          Alcotest.test_case "thm 2.4: 4/3" `Quick test_thm24_d_sweep;
          Alcotest.test_case "thm 2.4 at d=2: all strategies" `Quick
            test_thm24_d2_all_strategies;
          Alcotest.test_case "thm 2.5: toward (5d+2)/(4d+1)" `Quick
            test_thm25_d_sweep;
          Alcotest.test_case "thm 3.7: exactly 2" `Quick test_thm37_d_sweep;
        ] );
      ( "thm 2.6 adaptive",
        [
          Alcotest.test_case "optimum and bound" `Quick
            test_thm26_opt_and_bound;
          Alcotest.test_case "deterministic" `Quick test_thm26_adapts;
        ] );
      ( "periodicity",
        [
          Alcotest.test_case "steady states" `Quick
            test_scenarios_reach_steady_state;
        ] );
      ( "random workloads",
        [
          Alcotest.test_case "shapes" `Quick test_random_workload_shapes;
          Alcotest.test_case "determinism" `Quick
            test_random_workload_determinism;
          Alcotest.test_case "zipf skew" `Quick test_random_workload_zipf_skew;
          Alcotest.test_case "mixed deadlines" `Quick
            test_random_workload_mixed_deadlines;
          Alcotest.test_case "validation" `Quick
            test_random_workload_validation;
        ] );
    ]
