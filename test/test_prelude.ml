(* Unit and property tests for the prelude substrate. *)

module Rng = Prelude.Rng
module Rat = Prelude.Rat
module Stats = Prelude.Stats
module Ivec = Prelude.Ivec
module Texttable = Prelude.Texttable

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let xs = List.init 16 (fun _ -> Rng.bits64 a) in
  let ys = List.init 16 (fun _ -> Rng.bits64 b) in
  check Alcotest.bool "different streams" true (xs <> ys)

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let child = Rng.split a in
  let xs = List.init 16 (fun _ -> Rng.bits64 a) in
  let ys = List.init 16 (fun _ -> Rng.bits64 child) in
  check Alcotest.bool "split streams differ" true (xs <> ys)

let test_rng_copy () =
  let a = Rng.create ~seed:9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check Alcotest.int "copies agree" (Rng.int a 999) (Rng.int b 999)

let prop_int_in_range =
  qtest "Rng.int stays in range"
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
       let rng = Rng.create ~seed in
       let ok = ref true in
       for _ = 1 to 100 do
         let v = Rng.int rng bound in
         if v < 0 || v >= bound then ok := false
       done;
       !ok)

let prop_int_in_bounds =
  qtest "Rng.int_in stays in [lo,hi]"
    QCheck.(triple small_int (int_range (-500) 500) (int_range 0 500))
    (fun (seed, lo, span) ->
       let hi = lo + span in
       let rng = Rng.create ~seed in
       let ok = ref true in
       for _ = 1 to 50 do
         let v = Rng.int_in rng lo hi in
         if v < lo || v > hi then ok := false
       done;
       !ok)

let test_rng_int_uniformish () =
  (* coarse sanity bound on a 10-bucket histogram *)
  let rng = Rng.create ~seed:123 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
       check Alcotest.bool "bucket within 5% of uniform" true
         (abs (c - (n / 10)) < n / 20))
    buckets

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:5 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 50 (fun i -> i))
    sorted

let test_rng_float_range () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 1000 do
    let f = Rng.float rng 2.5 in
    check Alcotest.bool "in [0,2.5)" true (f >= 0.0 && f < 2.5)
  done

let test_rng_bool_balanced () =
  let rng = Rng.create ~seed:13 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool rng then incr trues
  done;
  check Alcotest.bool "roughly fair" true (abs (!trues - 5000) < 300)

let test_rng_geometric_mean () =
  let rng = Rng.create ~seed:17 in
  let total = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    total := !total + Rng.geometric rng ~p:0.5
  done;
  (* mean of geometric(0.5) failures-before-success is 1 *)
  let mean = float_of_int !total /. float_of_int n in
  check Alcotest.bool "mean near 1" true (abs_float (mean -. 1.0) < 0.07)

let test_rng_zipf_ranks () =
  let rng = Rng.create ~seed:19 in
  let counts = Array.make 5 0 in
  for _ = 1 to 20_000 do
    let r = Rng.zipf rng ~n:5 ~s:1.0 in
    counts.(r) <- counts.(r) + 1
  done;
  check Alcotest.bool "rank 0 most popular" true
    (counts.(0) > counts.(1) && counts.(1) > counts.(4))

let test_rng_invalid_args () =
  let rng = Rng.create ~seed:0 in
  Alcotest.check_raises "int 0"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
        ignore (Rng.int rng 0));
  Alcotest.check_raises "int_in inverted"
    (Invalid_argument "Rng.int_in: lo > hi") (fun () ->
        ignore (Rng.int_in rng 3 2))

(* ------------------------------------------------------------------ *)
(* Rat *)

let rat = Alcotest.testable Rat.pp Rat.equal

let test_rat_normalisation () =
  check rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  check rat "-6/-4 = 3/2" (Rat.make 3 2) (Rat.make (-6) (-4));
  check rat "6/-4 = -3/2" (Rat.make (-3) 2) (Rat.make 6 (-4));
  check rat "0/7 = 0" Rat.zero (Rat.make 0 7)

let test_rat_arith () =
  check rat "1/2 + 1/3" (Rat.make 5 6) (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  check rat "1/2 - 1/3" (Rat.make 1 6) (Rat.sub (Rat.make 1 2) (Rat.make 1 3));
  check rat "2/3 * 9/4" (Rat.make 3 2) (Rat.mul (Rat.make 2 3) (Rat.make 9 4));
  check rat "1/2 / 1/4" (Rat.of_int 2) (Rat.div (Rat.make 1 2) (Rat.make 1 4))

let test_rat_compare () =
  check Alcotest.bool "45/41 > 12/11" true Rat.(make 45 41 > make 12 11);
  check Alcotest.bool "19/12 > 45/41" true Rat.(make 19 12 > make 45 41);
  check Alcotest.int "equal" 0 (Rat.compare (Rat.make 2 4) (Rat.make 1 2))

let test_rat_paper_bounds_order () =
  (* Table 1, d = 4: A_fix 2-1/4 = 7/4; A_fix_balance UB 2-2/4 = 3/2;
     A_eager UB (3d-2)/(2d-1) = 10/7; A_balance UB 6(d-1)/(4d-3) = 18/13 *)
  let fix = Rat.make 7 4
  and fixbal = Rat.make 3 2
  and eager = Rat.make 10 7
  and bal = Rat.make 18 13 in
  check Alcotest.bool "bal < eager" true Rat.(bal < eager);
  check Alcotest.bool "eager < fixbal" true Rat.(eager < fixbal);
  check Alcotest.bool "fixbal < fix" true Rat.(fixbal < fix)

let test_rat_to_string () =
  check Alcotest.string "45/41" "45/41" (Rat.to_string (Rat.make 45 41));
  check Alcotest.string "int" "3" (Rat.to_string (Rat.of_int 3))

let test_rat_errors () =
  Alcotest.check_raises "zero den"
    (Invalid_argument "Rat.make: zero denominator") (fun () ->
        ignore (Rat.make 1 0));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero))

let prop_rat_add_comm =
  qtest "Rat.add commutative"
    QCheck.(pair
              (pair (int_range (-50) 50) (int_range 1 50))
              (pair (int_range (-50) 50) (int_range 1 50)))
    (fun ((a, b), (c, d)) ->
       Rat.equal
         (Rat.add (Rat.make a b) (Rat.make c d))
         (Rat.add (Rat.make c d) (Rat.make a b)))

let prop_rat_mul_inverse =
  qtest "x * 1/x = 1 for x <> 0"
    QCheck.(pair (int_range 1 100) (int_range 1 100))
    (fun (a, b) ->
       let x = Rat.make a b in
       Rat.equal Rat.one (Rat.mul x (Rat.inv x)))

let prop_rat_compare_vs_float =
  qtest "compare consistent with floats"
    QCheck.(pair
              (pair (int_range (-100) 100) (int_range 1 100))
              (pair (int_range (-100) 100) (int_range 1 100)))
    (fun ((a, b), (c, d)) ->
       let x = Rat.make a b and y = Rat.make c d in
       let fc = compare (Rat.to_float x) (Rat.to_float y) in
       let rc = Rat.compare x y in
       if fc = 0 then true (* float collision: exact compare knows better *)
       else (rc > 0) = (fc > 0))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check Alcotest.int "count" 4 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean s);
  check (Alcotest.float 1e-9) "variance" (5.0 /. 3.0) (Stats.variance s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.max s)

let test_stats_empty () =
  let s = Stats.create () in
  check Alcotest.bool "mean nan" true (Float.is_nan (Stats.mean s));
  check Alcotest.bool "variance nan" true (Float.is_nan (Stats.variance s))

let test_stats_merge () =
  let a = Stats.create ()
  and b = Stats.create ()
  and whole = Stats.create () in
  let data = [ 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 ] in
  List.iteri
    (fun i x ->
       Stats.add whole x;
       if i < 4 then Stats.add a x else Stats.add b x)
    data;
  let m = Stats.merge a b in
  check Alcotest.int "count" (Stats.count whole) (Stats.count m);
  check (Alcotest.float 1e-9) "mean" (Stats.mean whole) (Stats.mean m);
  check (Alcotest.float 1e-9) "variance" (Stats.variance whole)
    (Stats.variance m)

let test_stats_quantile () =
  let data = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check (Alcotest.float 1e-9) "median" 3.0 (Stats.quantile data 0.5);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.quantile data 0.0);
  check (Alcotest.float 1e-9) "max" 5.0 (Stats.quantile data 1.0);
  check (Alcotest.float 1e-9) "q25" 2.0 (Stats.quantile data 0.25)

let prop_stats_mean_bounds =
  qtest "mean between min and max"
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
       let s = Stats.create () in
       List.iter (Stats.add s) xs;
       Stats.mean s >= Stats.min s -. 1e-9
       && Stats.mean s <= Stats.max s +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Ivec *)

let test_ivec_push_get () =
  let v = Ivec.create () in
  for i = 0 to 99 do
    Ivec.push v (i * i)
  done;
  check Alcotest.int "length" 100 (Ivec.length v);
  check Alcotest.int "get 7" 49 (Ivec.get v 7);
  check Alcotest.int "pop" (99 * 99) (Ivec.pop v);
  check Alcotest.int "length after pop" 99 (Ivec.length v)

let test_ivec_bounds () =
  let v = Ivec.of_array [| 1; 2; 3 |] in
  Alcotest.check_raises "get oob"
    (Invalid_argument "Ivec.get: index 3 out of [0,3)") (fun () ->
        ignore (Ivec.get v 3));
  Alcotest.check_raises "pop empty" (Invalid_argument "Ivec.pop: empty")
    (fun () -> ignore (Ivec.pop (Ivec.create ())))

let test_ivec_roundtrip () =
  let a = [| 5; 3; 8; 1 |] in
  let v = Ivec.of_array a in
  check Alcotest.(array int) "to_array" a (Ivec.to_array v);
  check Alcotest.(list int) "to_list" [ 5; 3; 8; 1 ] (Ivec.to_list v);
  Ivec.sort v;
  check Alcotest.(array int) "sorted" [| 1; 3; 5; 8 |] (Ivec.to_array v)

let test_ivec_fold_iter () =
  let v = Ivec.of_array [| 1; 2; 3; 4 |] in
  check Alcotest.int "fold sum" 10 (Ivec.fold ( + ) 0 v);
  let seen = ref [] in
  Ivec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  check Alcotest.int "iteri count" 4 (List.length !seen);
  check Alcotest.bool "exists" true (Ivec.exists (fun x -> x = 3) v);
  check Alcotest.bool "not exists" false (Ivec.exists (fun x -> x = 9) v)

let prop_ivec_like_list =
  qtest "Ivec push/to_list behaves like list"
    QCheck.(list small_int)
    (fun xs ->
       let v = Ivec.create () in
       List.iter (Ivec.push v) xs;
       Ivec.to_list v = xs)


(* ------------------------------------------------------------------ *)
(* Parmap *)

let test_parmap_matches_sequential () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  check Alcotest.(list int) "same as List.map" (List.map f xs)
    (Prelude.Parmap.map ~domains:4 f xs);
  check Alcotest.(list int) "mapi indexed"
    (List.mapi (fun i x -> i + x) xs)
    (Prelude.Parmap.mapi ~domains:3 (fun i x -> i + x) xs)

let test_parmap_edge_cases () =
  check Alcotest.(list int) "empty" [] (Prelude.Parmap.map (fun x -> x) []);
  check Alcotest.(list int) "singleton" [ 7 ]
    (Prelude.Parmap.map ~domains:8 (fun x -> x + 1) [ 6 ]);
  check Alcotest.(list int) "one domain degrades to List.map" [ 2; 3 ]
    (Prelude.Parmap.map ~domains:1 (fun x -> x + 1) [ 1; 2 ])

let test_parmap_exception_propagates () =
  match
    Prelude.Parmap.map ~domains:4
      (fun x -> if x = 13 then failwith "boom" else x)
      (List.init 40 (fun i -> i))
  with
  | exception Failure m -> check Alcotest.string "message" "boom" m
  | _ -> Alcotest.fail "expected Failure"

let test_parmap_across_domain_counts () =
  (* result order and exception choice must be schedule-independent:
     identical across 1, 2 and the recommended number of domains *)
  let xs = List.init 73 (fun i -> i) in
  let f x = (x * 3) - 1 in
  let expected = List.map f xs in
  List.iter
    (fun domains ->
       check Alcotest.(list int)
         (Printf.sprintf "order with %d domains" domains)
         expected
         (Prelude.Parmap.map ~domains f xs);
       check Alcotest.(list int)
         (Printf.sprintf "mapi order with %d domains" domains)
         (List.mapi (fun i x -> (i * 100) + x) xs)
         (Prelude.Parmap.mapi ~domains (fun i x -> (i * 100) + x) xs))
    [ 1; 2; Prelude.Parmap.recommended_domains () ]

let test_parmap_first_exception_in_input_order () =
  (* several tasks fail; whatever the parallel schedule, the re-raised
     exception must be the one from the earliest failing input *)
  let failing x =
    if x = 11 then failwith "first"
    else if x = 12 || x = 30 then failwith "later"
    else x
  in
  List.iter
    (fun domains ->
       match
         Prelude.Parmap.map ~domains failing (List.init 40 (fun i -> i))
       with
       | exception Failure m ->
         check Alcotest.string
           (Printf.sprintf "earliest failure wins with %d domains" domains)
           "first" m
       | _ -> Alcotest.fail "expected Failure")
    [ 1; 2; Prelude.Parmap.recommended_domains () ]

exception Parmap_bt_probe

let[@inline never] parmap_bt_boom x =
  (* backtrace recording is per-domain in OCaml 5, so switch it on
     inside the worker, where the raise happens *)
  Printexc.record_backtrace true;
  if x >= 0 then raise Parmap_bt_probe;
  x

(* Regression: the re-raise used to be a bare [raise e], which rewrites
   the backtrace to point at the caller and loses the worker-side frames.
   [Printexc.raise_with_backtrace] must preserve the trace captured in
   the worker domain. *)
let test_parmap_backtrace_preserved () =
  (* ... and in this domain, where the re-raise happens *)
  Printexc.record_backtrace true;
  List.iter
    (fun domains ->
       match
         Prelude.Parmap.map ~domains parmap_bt_boom (List.init 8 (fun i -> i))
       with
       | exception Parmap_bt_probe ->
         let bt = Printexc.get_backtrace () in
         if not (Printexc.backtrace_status ()) then ()
         else if
           (* the worker frame must survive the cross-domain re-raise *)
           not
             (List.exists
                (fun needle ->
                   let n = String.length needle and h = String.length bt in
                   let rec at i =
                     i + n <= h && (String.sub bt i n = needle || at (i + 1))
                   in
                   at 0)
                [ "parmap_bt_boom"; "test_prelude.ml\", line" ])
         then
           Alcotest.failf
             "worker frames missing from backtrace (%d domains):\n%s" domains
             bt
       | _ -> Alcotest.fail "expected Parmap_bt_probe")
    [ 1; 3 ]

let test_parmap_domain_stats () =
  (* the observe hook reports one stat per domain, covering every task *)
  let seen = ref [] in
  let _ =
    Prelude.Parmap.mapi ~domains:3
      ~observe:(fun stats -> seen := stats)
      (fun _ x -> x)
      (List.init 10 (fun i -> i))
  in
  check Alcotest.int "one stat per domain" 3 (List.length !seen);
  check Alcotest.int "tasks partition the input" 10
    (List.fold_left
       (fun acc (s : Prelude.Parmap.domain_stat) -> acc + s.tasks)
       0 !seen)

let test_parmap_actually_parallel_zipf () =
  (* domains hitting the shared (mutex-protected) Zipf cache together *)
  let results =
    Prelude.Parmap.map ~domains:4
      (fun seed ->
         let rng = Rng.create ~seed in
         let acc = ref 0 in
         for _ = 1 to 1000 do
           acc := !acc + Rng.zipf rng ~n:50 ~s:1.2
         done;
         !acc)
      (List.init 8 (fun i -> i))
  in
  check Alcotest.int "eight results" 8 (List.length results);
  (* deterministic given seeds, whatever the parallel schedule *)
  let again =
    Prelude.Parmap.map ~domains:2
      (fun seed ->
         let rng = Rng.create ~seed in
         let acc = ref 0 in
         for _ = 1 to 1000 do
           acc := !acc + Rng.zipf rng ~n:50 ~s:1.2
         done;
         !acc)
      (List.init 8 (fun i -> i))
  in
  check Alcotest.(list int) "schedule independent" results again

(* ------------------------------------------------------------------ *)
(* Pool *)

module Pool = Prelude.Pool

let test_pool_iarr_grow_preserves () =
  let a = Pool.Iarr.create ~capacity:4 () in
  Pool.Iarr.fill a ~pos:0 ~len:4 0;
  for i = 0 to 3 do
    Pool.Iarr.set a i (i * 7)
  done;
  Pool.Iarr.ensure a 1000;
  check Alcotest.bool "capacity grew" true (Pool.Iarr.capacity a >= 1000);
  for i = 0 to 3 do
    check Alcotest.int "contents preserved" (i * 7) (Pool.Iarr.get a i)
  done;
  Pool.Iarr.fill a ~pos:4 ~len:996 (-1);
  check Alcotest.int "fill wrote" (-1) (Pool.Iarr.get a 999)

let test_pool_farr_grow_preserves () =
  let a = Pool.Farr.create ~capacity:2 () in
  Pool.Farr.set a 0 3.25;
  Pool.Farr.set a 1 (-1.5);
  Pool.Farr.ensure a 64;
  check (Alcotest.float 0.0) "f0" 3.25 (Pool.Farr.get a 0);
  check (Alcotest.float 0.0) "f1" (-1.5) (Pool.Farr.get a 1)

let test_pool_ints_alloc_free_recycle () =
  let p = Pool.Ints.create ~capacity:2 ~width:3 () in
  let s0 = Pool.Ints.alloc p and s1 = Pool.Ints.alloc p in
  let s2 = Pool.Ints.alloc p in
  (* grows past initial capacity *)
  check Alcotest.bool "distinct slots" true (s0 <> s1 && s1 <> s2 && s0 <> s2);
  Pool.Ints.set p s1 0 11;
  Pool.Ints.set p s1 2 13;
  check Alcotest.int "live" 3 (Pool.Ints.live p);
  check Alcotest.int "field read back" 13 (Pool.Ints.get p s1 2);
  Pool.Ints.free p s0;
  check Alcotest.int "live after free" 2 (Pool.Ints.live p);
  let s3 = Pool.Ints.alloc p in
  check Alcotest.int "freed slot recycled" s0 s3;
  (* s1 untouched by the free/alloc churn of other slots *)
  check Alcotest.int "neighbour intact" 11 (Pool.Ints.get p s1 0)

let prop_pool_ints_like_naive =
  (* differential vs a naive Hashtbl-of-arrays model over random
     alloc/free/set sequences *)
  qtest ~count:100 "Pool.Ints matches naive model"
    QCheck.(list (pair (int_range 0 2) (pair small_nat small_nat)))
    (fun ops ->
       let width = 2 in
       let p = Pool.Ints.create ~capacity:1 ~width () in
       let model = Hashtbl.create 16 in
       let live = ref [] in
       let ok = ref true in
       List.iter
         (fun (op, (a, b)) ->
            match op with
            | 0 ->
              let s = Pool.Ints.alloc p in
              if Hashtbl.mem model s then ok := false (* slot double-handed *)
              else begin
                Hashtbl.replace model s (Array.make width 0);
                Pool.Ints.set p s 0 0;
                Pool.Ints.set p s 1 0;
                live := s :: !live
              end
            | 1 -> (
                match !live with
                | [] -> ()
                | s :: rest ->
                  Pool.Ints.free p s;
                  Hashtbl.remove model s;
                  live := rest)
            | _ -> (
                match !live with
                | [] -> ()
                | s :: _ ->
                  let j = a mod width in
                  Pool.Ints.set p s j b;
                  (Hashtbl.find model s).(j) <- b))
         ops;
       Hashtbl.iter
         (fun s arr ->
            for j = 0 to width - 1 do
              if Pool.Ints.get p s j <> arr.(j) then ok := false
            done)
         model;
       !ok && Pool.Ints.live p = Hashtbl.length model)

let test_pool_table_basic () =
  let t = Pool.Table.create ~capacity:4 ~width:2 () in
  let e = Pool.Table.put t 42 in
  Pool.Table.setv t e 0 7;
  Pool.Table.setv t e 1 8;
  check Alcotest.int "count" 1 (Pool.Table.count t);
  let e' = Pool.Table.find t 42 in
  check Alcotest.int "find returns entry" e e';
  check Alcotest.int "payload 0" 7 (Pool.Table.getv t e' 0);
  check Alcotest.int "payload 1" 8 (Pool.Table.getv t e' 1);
  check Alcotest.int "missing" (-1) (Pool.Table.find t 43);
  check Alcotest.bool "remove" true (Pool.Table.remove t 42);
  check Alcotest.bool "remove again" false (Pool.Table.remove t 42);
  check Alcotest.int "gone" (-1) (Pool.Table.find t 42)

let test_pool_table_negative_key_rejected () =
  let t = Pool.Table.create ~width:1 () in
  Alcotest.check_raises "negative key"
    (Invalid_argument "Pool.Table: keys must be >= 0") (fun () ->
        ignore (Pool.Table.put t (-1)))

let prop_pool_table_like_hashtbl =
  (* differential vs Hashtbl over random put/remove/find with rehash
     pressure (small initial capacity, keys from a small range) *)
  qtest ~count:150 "Pool.Table matches Hashtbl"
    QCheck.(list (pair (int_range 0 2) (pair (int_range 0 40) small_nat)))
    (fun ops ->
       let t = Pool.Table.create ~capacity:4 ~width:1 () in
       let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
       let ok = ref true in
       List.iter
         (fun (op, (key, v)) ->
            match op with
            | 0 ->
              let e = Pool.Table.put t key in
              Pool.Table.setv t e 0 v;
              Hashtbl.replace model key v
            | 1 ->
              let r = Pool.Table.remove t key in
              if r <> Hashtbl.mem model key then ok := false;
              Hashtbl.remove model key
            | _ -> (
                let e = Pool.Table.find t key in
                match Hashtbl.find_opt model key with
                | None -> if e <> -1 then ok := false
                | Some expect ->
                  if e < 0 || Pool.Table.getv t e 0 <> expect then ok := false))
         ops;
       if Pool.Table.count t <> Hashtbl.length model then ok := false;
       let seen = ref 0 in
       Pool.Table.iter t (fun key e ->
           incr seen;
           match Hashtbl.find_opt model key with
           | None -> ok := false
           | Some expect -> if Pool.Table.getv t e 0 <> expect then ok := false);
       !ok && !seen = Hashtbl.length model)

(* ------------------------------------------------------------------ *)
(* Texttable *)

let test_texttable_render () =
  let t = Texttable.create ~title:"demo" ~header:[ "name"; "val" ] () in
  Texttable.set_align t [ Texttable.Left; Texttable.Right ];
  Texttable.add_row t [ "alpha"; "1" ];
  Texttable.add_row t [ "b"; "22" ];
  let s = Texttable.render t in
  check Alcotest.bool "has title" true
    (String.length s > 0 && String.sub s 0 4 = "demo");
  check Alcotest.bool "right-aligned value" true
    (let lines = String.split_on_char '\n' s in
     List.exists (fun l -> l = "b       22") lines)

let test_texttable_too_many_cells () =
  let t = Texttable.create ~header:[ "a" ] () in
  Alcotest.check_raises "too many"
    (Invalid_argument "Texttable.add_row: 2 cells for 1 columns") (fun () ->
        Texttable.add_row t [ "x"; "y" ])

let test_texttable_cells () =
  check Alcotest.string "nan" "-" (Texttable.cell_float nan);
  check Alcotest.string "ratio" "1.3333" (Texttable.cell_ratio (4.0 /. 3.0))

let () =
  Alcotest.run "prelude"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "uniformish" `Quick test_rng_int_uniformish;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "bool balanced" `Quick test_rng_bool_balanced;
          Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
          Alcotest.test_case "zipf ranks" `Quick test_rng_zipf_ranks;
          Alcotest.test_case "invalid args" `Quick test_rng_invalid_args;
          prop_int_in_range;
          prop_int_in_bounds;
        ] );
      ( "rat",
        [
          Alcotest.test_case "normalisation" `Quick test_rat_normalisation;
          Alcotest.test_case "arith" `Quick test_rat_arith;
          Alcotest.test_case "compare" `Quick test_rat_compare;
          Alcotest.test_case "paper bounds order" `Quick
            test_rat_paper_bounds_order;
          Alcotest.test_case "to_string" `Quick test_rat_to_string;
          Alcotest.test_case "errors" `Quick test_rat_errors;
          prop_rat_add_comm;
          prop_rat_mul_inverse;
          prop_rat_compare_vs_float;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "quantile" `Quick test_stats_quantile;
          prop_stats_mean_bounds;
        ] );
      ( "ivec",
        [
          Alcotest.test_case "push/get" `Quick test_ivec_push_get;
          Alcotest.test_case "bounds" `Quick test_ivec_bounds;
          Alcotest.test_case "roundtrip" `Quick test_ivec_roundtrip;
          Alcotest.test_case "fold/iter" `Quick test_ivec_fold_iter;
          prop_ivec_like_list;
        ] );
      ( "parmap",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_parmap_matches_sequential;
          Alcotest.test_case "edge cases" `Quick test_parmap_edge_cases;
          Alcotest.test_case "exception propagates" `Quick
            test_parmap_exception_propagates;
          Alcotest.test_case "order across domain counts" `Quick
            test_parmap_across_domain_counts;
          Alcotest.test_case "first exception in input order" `Quick
            test_parmap_first_exception_in_input_order;
          Alcotest.test_case "backtrace preserved" `Quick
            test_parmap_backtrace_preserved;
          Alcotest.test_case "domain stats" `Quick test_parmap_domain_stats;
          Alcotest.test_case "parallel zipf determinism" `Quick
            test_parmap_actually_parallel_zipf;
        ] );
      ( "pool",
        [
          Alcotest.test_case "iarr grow preserves" `Quick
            test_pool_iarr_grow_preserves;
          Alcotest.test_case "farr grow preserves" `Quick
            test_pool_farr_grow_preserves;
          Alcotest.test_case "ints alloc/free recycle" `Quick
            test_pool_ints_alloc_free_recycle;
          prop_pool_ints_like_naive;
          Alcotest.test_case "table basic" `Quick test_pool_table_basic;
          Alcotest.test_case "table rejects negative keys" `Quick
            test_pool_table_negative_key_rejected;
          prop_pool_table_like_hashtbl;
        ] );
      ( "texttable",
        [
          Alcotest.test_case "render" `Quick test_texttable_render;
          Alcotest.test_case "too many cells" `Quick
            test_texttable_too_many_cells;
          Alcotest.test_case "cells" `Quick test_texttable_cells;
        ] );
    ]
