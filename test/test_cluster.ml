(* Tests for the cluster tier: ring placement properties, wire grammar
   round-trips, live-path/simulator LDF parity, decision parity with
   Localstrat across node layouts, the Theorem 3.7/3.8 budgets measured
   over the wire, failure/rejoin semantics (zero lost terminals), and
   the serve-mode integration. *)

module Request = Sched.Request
module Instance = Sched.Instance
module Engine = Sched.Engine
module Outcome = Sched.Outcome
module Local = Localstrat.Local
module Net = Distnet.Net
module Ring = Cluster.Ring
module Wire = Cluster.Wire
module Transport = Cluster.Transport
module Session = Cluster.Session
module Rng = Prelude.Rng
module Server = Serve.Server
module Client = Serve.Client

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* ring *)

let test_ring_owner_total () =
  let ring = Ring.create ~nodes:[ 0; 1; 2 ] () in
  for res = 0 to 499 do
    let o = Ring.owner ring res in
    if not (List.mem o [ 0; 1; 2 ]) then
      Alcotest.failf "resource %d owned by non-member %d" res o
  done

let test_ring_spread () =
  (* every node of a 3-node ring owns something on a reasonable space *)
  let ring = Ring.create ~nodes:[ 0; 1; 2 ] () in
  let counts = Array.make 3 0 in
  for res = 0 to 199 do
    counts.(Ring.owner ring res) <- counts.(Ring.owner ring res) + 1
  done;
  Array.iteri
    (fun node c ->
       if c = 0 then Alcotest.failf "node %d owns no resources" node)
    counts

let ring_change_gen =
  QCheck.Gen.(
    tup3 (int_range 2 6) (int_range 1 128) (int_range 0 5)
    |> map (fun (nodes, n, victim) -> (nodes, n, victim mod nodes)))

let ring_change_arb =
  QCheck.make ring_change_gen ~print:(fun (nodes, n, victim) ->
      Printf.sprintf "nodes=%d n=%d victim=%d" nodes n victim)

let test_ring_remove_moves_only_victims =
  qtest "removing a node moves only its resources" ring_change_arb
    (fun (nodes, n, victim) ->
       let ring = Ring.create ~nodes:(List.init nodes Fun.id) () in
       let smaller = Ring.remove ring victim in
       List.for_all
         (fun res ->
            if Ring.owner ring res = victim then
              Ring.owner smaller res <> victim
            else Ring.owner smaller res = Ring.owner ring res)
         (List.init n Fun.id))

let test_ring_rejoin_restores_placement =
  qtest "re-adding a removed node restores the original placement"
    ring_change_arb
    (fun (nodes, n, victim) ->
       let ring = Ring.create ~nodes:(List.init nodes Fun.id) () in
       let back = Ring.add (Ring.remove ring victim) victim in
       List.for_all
         (fun res -> Ring.owner back res = Ring.owner ring res)
         (List.init n Fun.id))

let test_ring_moved_is_exact () =
  let ring = Ring.create ~nodes:[ 0; 1; 2; 3 ] () in
  let smaller = Ring.remove ring 2 in
  let moved = Ring.moved ~before:ring ~after:smaller ~n:64 in
  List.iter
    (fun res ->
       check Alcotest.int
         (Printf.sprintf "moved resource %d belonged to the victim" res)
         2 (Ring.owner ring res))
    moved;
  for res = 0 to 63 do
    let did_move = Ring.owner ring res <> Ring.owner smaller res in
    check Alcotest.bool
      (Printf.sprintf "moved list exact at %d" res)
      did_move (List.mem res moved)
  done

(* ------------------------------------------------------------------ *)
(* wire grammar *)

let reqinfo_gen =
  QCheck.Gen.(
    map
      (fun (rid, alts, arrival, deadline) ->
         let alternatives = List.sort_uniq compare alts in
         { Wire.rid; alternatives; arrival; deadline })
      (tup4 (int_range 0 9999)
         (list_size (int_range 1 4) (int_range 0 99))
         (int_range 0 500) (int_range 1 40)))

let env_gen data tagged =
  QCheck.Gen.(
    map
      (fun (sender, dst, key) ->
         let deadline_key = if key = 0 then max_int else key in
         Wire.Data { Wire.sender; dst; deadline_key; tagged; data })
      (tup3 (int_range 0 9999) (int_range 0 99) (int_range 0 2000)))

let wire_gen =
  QCheck.Gen.(
    reqinfo_gen >>= fun ri ->
    tup3 (int_range 0 9999) (int_range 0 99) (int_range 0 500)
    >>= fun (a, b, c) ->
    oneof
      [
        env_gen (Wire.Offer ri) false;
        env_gen (Wire.Probe ri) false;
        env_gen (Wire.Cancel { q = a; old_res = b; old_t = c }) false;
        env_gen (Wire.Rival ri) false;
        env_gen (Wire.Swap { r = a; q = ri }) true;
        env_gen (Wire.Rehome { r = ri; res = b }) false;
        env_gen Wire.Loadq false;
        env_gen (Wire.Assign ri) false;
        return (Wire.Reply (Wire.Accept { q = a; res = b; slot = c }));
        return (Wire.Reply (Wire.Full { q = a; res = b }));
        return (Wire.Reply (Wire.Ack { q = a; res = b }));
        return (Wire.Reply (Wire.Freeat { q = a; res = b; slot = c }));
        return (Wire.Reply (Wire.Served { res = b; round = c; q = a }));
        return (Wire.Reply (Wire.Pong { node = b; round = c }));
        return (Wire.Control (Wire.Hello { node = b }));
        return (Wire.Control (Wire.Ping { round = c }));
        return (Wire.Control (Wire.Join { node = b; round = c }));
        return (Wire.Control (Wire.Handoff { res = b; slots = [] }));
        return
          (Wire.Control
             (Wire.Handoff { res = b; slots = [ (c, ri); (c + 1, ri) ] }));
      ])

let wire_arb = QCheck.make wire_gen ~print:Wire.render

let test_wire_roundtrip =
  qtest ~count:500 "wire messages round-trip" wire_arb (fun msg ->
      match Wire.parse (Wire.render msg) with
      | Ok parsed -> parsed = msg
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

let test_wire_rejects () =
  (match Wire.parse (String.make (Wire.max_line + 1) 'x') with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "oversize line accepted");
  (match Wire.parse "hello rsp/0 3" with
   | Error m ->
     check Alcotest.bool "version named" true
       (String.length m > 0
        && String.index_opt m '0' <> None)
   | Ok _ -> Alcotest.fail "bad hello version accepted");
  (match Wire.parse "join rsp/9 1 4" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bad join version accepted");
  List.iter
    (fun line ->
       match Wire.parse line with
       | Error _ -> ()
       | Ok _ -> Alcotest.failf "%S accepted" line)
    [
      "";
      "bogus 1 2 3";
      "offer 1 2 3";               (* truncated envelope *)
      "offer 1 2 3 u 4";           (* truncated reqinfo *)
      "offer 1 2 3 x 4 0,1 0 2";   (* bad tag flag *)
      "offer -1 2 3 u 4 0,1 0 2";  (* negative field *)
      "offer 1 2 3 u 4 0,0 0 2";   (* duplicate alternatives *)
      "offer 1 2 3 u 4 0,1 0 0";   (* zero deadline *)
      "accept 1 2";                (* arity *)
      "pong 1";
      "handoff 3 0 4 0,1 0";       (* truncated handoff entry *)
    ]

let test_wire_oversize_via_render () =
  (* a handoff big enough to overflow the line budget must be refused
     by parse; render itself stays mechanical *)
  let ri =
    { Wire.rid = 123456; alternatives = [ 10; 20 ]; arrival = 9; deadline = 7 }
  in
  let slots = List.init 4000 (fun i -> (i, ri)) in
  let line = Wire.render (Wire.Control (Wire.Handoff { res = 1; slots })) in
  check Alcotest.bool "line is oversize" true
    (String.length line > Wire.max_line);
  match Wire.parse line with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversize handoff accepted"

(* ------------------------------------------------------------------ *)
(* live-path parity: the transport's LDF cut is Distnet's (satellite) *)

let parity_gen =
  QCheck.Gen.(
    tup4 (int_range 1 6) (int_range 1 5) (int_range 0 10000)
      (int_range 1 60))

let parity_arb =
  QCheck.make parity_gen ~print:(fun (n, cap, seed, k) ->
      Printf.sprintf "n=%d capacity=%d seed=%d k=%d" n cap seed k)

let test_net_transport_parity =
  qtest ~count:200 "Transport drops exactly what Distnet.Net drops"
    parity_arb
    (fun (n, capacity, seed, k) ->
       let rng = Rng.create ~seed in
       let specs =
         List.init k (fun i ->
             let sender = Rng.int rng 20 in
             let dst = Rng.int rng n in
             let deadline = 1 + Rng.int rng 8 in
             let tagged = Rng.int rng 10 = 0 in
             (i, sender, dst, deadline, tagged))
       in
       let priority ~sender ~dst:_ = sender mod 3 in
       let net = Net.create ~n ~capacity ~priority () in
       let net_msgs =
         List.map
           (fun (i, sender, dst, deadline, tagged) ->
              { Net.sender; dst; deadline_key = deadline; tagged; payload = i })
           specs
       in
       let net_out =
         List.map (fun (_, ok) -> ok) (Net.exchange net net_msgs)
       in
       let transport = Transport.create ~n ~capacity ~priority () in
       let envs =
         List.map
           (fun (_, sender, dst, deadline, tagged) ->
              {
                Wire.sender;
                dst;
                deadline_key = deadline;
                tagged;
                data =
                  Wire.Offer
                    {
                      Wire.rid = sender;
                      alternatives = [ dst ];
                      arrival = 0;
                      deadline;
                    };
              })
           specs
       in
       let transport_out =
         List.map
           (fun (_, st) -> st = Transport.Delivered)
           (Transport.exchange transport
              ~owner:(fun _ -> 0)
              ~alive:(fun _ -> true)
              envs)
       in
       net_out = transport_out)

let test_transport_dead_node_bounces () =
  let transport = Transport.create ~n:4 ~capacity:2 () in
  let env dst =
    {
      Wire.sender = dst;
      dst;
      deadline_key = 5;
      tagged = false;
      data = Wire.Loadq;
    }
  in
  let results =
    Transport.exchange transport
      ~owner:(fun res -> res mod 2)
      ~alive:(fun node -> node = 0)
      [ env 0; env 1; env 2; env 3 ]
  in
  let statuses = List.map snd results in
  check Alcotest.bool "even resources delivered" true
    (List.nth statuses 0 = Transport.Delivered
     && List.nth statuses 2 = Transport.Delivered);
  check Alcotest.bool "odd resources dead" true
    (List.nth statuses 1 = Transport.Dead
     && List.nth statuses 3 = Transport.Dead);
  check Alcotest.int "dead drops counted" 2
    (Transport.dropped_dead transport)

(* ------------------------------------------------------------------ *)
(* decision parity with Localstrat across node layouts *)

let random_instance ~n ~d ~rounds ~load ~seed =
  let rng = Rng.create ~seed in
  Adversary.Random_workload.make ~rng ~n ~d ~rounds ~load ()

let outcomes_equal ~what (a : Outcome.t) (b : Outcome.t) =
  check Alcotest.int (what ^ ": served") a.Outcome.served b.Outcome.served;
  Array.iteri
    (fun id s ->
       if b.Outcome.served_at.(id) <> s then
         Alcotest.failf "%s: request %d served at %s vs %s" what id
           (match s with
            | Some (res, round) -> Printf.sprintf "(%d,%d)" res round
            | None -> "-")
           (match b.Outcome.served_at.(id) with
            | Some (res, round) -> Printf.sprintf "(%d,%d)" res round
            | None -> "-"))
    a.Outcome.served_at

let test_cluster_matches_local () =
  List.iter
    (fun (name, local_factory, strategy) ->
       List.iter
         (fun seed ->
            let inst = random_instance ~n:9 ~d:4 ~rounds:40 ~load:1.5 ~seed in
            let reference = Engine.run inst local_factory in
            List.iter
              (fun nodes ->
                 let captured = ref None in
                 let o =
                   Engine.run inst
                     (Session.factory
                        ~on_create:(fun s -> captured := Some s)
                        ~strategy ~nodes ())
                 in
                 outcomes_equal
                   ~what:(Printf.sprintf "%s seed=%d nodes=%d" name seed nodes)
                   reference o;
                 check Alcotest.bool "consistent" true
                   (Outcome.is_consistent o);
                 match !captured with
                 | None -> Alcotest.fail "factory never ran"
                 | Some s ->
                   check Alcotest.int
                     (Printf.sprintf "%s nodes=%d: no serve conflicts" name
                        nodes)
                     0 (Session.stats s).Session.serve_conflicts)
              [ 1; 2; 3; 5 ])
         [ 3; 17 ])
    [
      ("fix", Local.fix (), Session.Local_fix);
      ("eager", Local.eager (), Session.Local_eager { compact = false });
      ( "eager_compact",
        Local.eager ~compact:true (),
        Session.Local_eager { compact = true } );
    ]

(* ------------------------------------------------------------------ *)
(* the theorems, live *)

let test_thm37_live_on_three_nodes () =
  List.iter
    (fun d ->
       let sc, priority = Adversary.Thm37.make ~d ~intervals:6 in
       let metrics = Obs.Metrics.create () in
       let captured = ref None in
       let o =
         Engine.run sc.Adversary.Scenario.instance
           (Session.factory ~metrics ~priority
              ~on_create:(fun s -> captured := Some s)
              ~strategy:Session.Local_fix ~nodes:3 ())
       in
       let opt = Offline.Opt.value sc.Adversary.Scenario.instance in
       check Alcotest.int (Printf.sprintf "live alg d=%d" d) (6 * 2 * d)
         o.Outcome.served;
       check Alcotest.int (Printf.sprintf "opt d=%d" d) (6 * 4 * d) opt;
       let s =
         match !captured with
         | Some s -> Session.stats s
         | None -> Alcotest.fail "factory never ran"
       in
       check Alcotest.int "exactly 2 comm rounds per scheduling round" 2
         s.Session.comm_rounds_max;
       check Alcotest.int "metrics mirror the round budget" 2
         (Obs.Metrics.counter metrics "cluster.comm_rounds_max");
       check Alcotest.int "metrics mirror the serves" (6 * 2 * d)
         (Obs.Metrics.counter metrics "cluster.served");
       check Alcotest.bool "messages bounced under pressure" true
         (s.Session.bounced > 0);
       check Alcotest.int "no serve conflicts" 0 s.Session.serve_conflicts)
    [ 2; 4; 6 ]

let test_eager_budget_live () =
  List.iter
    (fun (compact, bound) ->
       let inst = random_instance ~n:6 ~d:4 ~rounds:60 ~load:1.4 ~seed:77 in
       let captured = ref None in
       let o =
         Engine.run inst
           (Session.factory
              ~on_create:(fun s -> captured := Some s)
              ~strategy:(Session.Local_eager { compact })
              ~nodes:3 ())
       in
       check Alcotest.bool "consistent" true (Outcome.is_consistent o);
       match !captured with
       | None -> Alcotest.fail "factory never ran"
       | Some s ->
         let st = Session.stats s in
         check Alcotest.bool
           (Printf.sprintf "at most %d comm rounds (compact=%b)" bound
              compact)
           true
           (st.Session.comm_rounds_max <= bound))
    [ (false, 9); (true, 8) ]

let test_proxy_global_baseline () =
  let inst = random_instance ~n:8 ~d:4 ~rounds:50 ~load:1.5 ~seed:21 in
  let captured = ref None in
  let o =
    Engine.run inst
      (Session.factory
         ~on_create:(fun s -> captured := Some s)
         ~strategy:Session.Proxy_global ~nodes:3 ())
  in
  check Alcotest.bool "consistent" true (Outcome.is_consistent o);
  check Alcotest.bool "serves something" true (o.Outcome.served > 0);
  match !captured with
  | None -> Alcotest.fail "factory never ran"
  | Some s ->
    let st = Session.stats s in
    check Alcotest.bool "uses at most 2 comm rounds per round" true
      (st.Session.comm_rounds_max <= 2);
    check Alcotest.int "no serve conflicts" 0 st.Session.serve_conflicts

(* ------------------------------------------------------------------ *)
(* failure and rejoin *)

(* Drive a session directly under streaming load, crash one node
   mid-run, rejoin it later, and account for every admitted request:
   exactly one terminal outcome each, every serve inside the request's
   original window. *)
let test_kill_and_rejoin_loses_no_terminal () =
  let n = 12 and d = 6 and nodes = 3 in
  let session =
    Session.create ~strategy:Session.Local_fix ~nodes ~n ~d ()
  in
  let rng = Rng.create ~seed:42 in
  let windows = Hashtbl.create 512 in (* id -> (arrival, last_round) *)
  let terminals = Hashtbl.create 512 in
  let record_terminal id what round =
    (match Hashtbl.find_opt terminals id with
     | Some prev ->
       Alcotest.failf "request %d got %s after %s" id what prev
     | None -> ());
    Hashtbl.replace terminals id (Printf.sprintf "%s@%d" what round)
  in
  let submit_wave round =
    for _ = 1 to 6 do
      let a = Rng.int rng n in
      let b = (a + 1 + Rng.int rng (n - 1)) mod n in
      let deadline = 2 + Rng.int rng (d - 1) in
      match Session.submit session ~alternatives:[ a; b ] ~deadline with
      | Ok id -> Hashtbl.replace windows id (round, round + deadline - 1)
      | Error m -> Alcotest.failf "submit: %s" m
    done
  in
  let victim = 1 in
  for round = 0 to 59 do
    if round < 40 then submit_wave round;
    if round = 12 then Session.kill session victim;
    if round = 26 then Session.rejoin session victim;
    let out = Session.step session in
    List.iter
      (fun (id, res) ->
         record_terminal id "served" round;
         let arrival, last = Hashtbl.find windows id in
         if round < arrival || round > last then
           Alcotest.failf
             "request %d served at %d outside its original window %d..%d"
             id round arrival last;
         if res < 0 || res >= n then Alcotest.failf "bad resource %d" res)
      out.Session.served;
    List.iter (fun id -> record_terminal id "expired" round) out.Session.expired
  done;
  check Alcotest.int "session drained" 0 (Session.pending session);
  Hashtbl.iter
    (fun id _ ->
       if not (Hashtbl.mem terminals id) then
         Alcotest.failf "request %d has no terminal outcome" id)
    windows;
  check Alcotest.int "no extra terminals" (Hashtbl.length windows)
    (Hashtbl.length terminals);
  let s = Session.stats session in
  check Alcotest.int "one failover" 1 s.Session.failovers;
  check Alcotest.bool "failover readmitted survivors" true
    (s.Session.readmitted > 0);
  check Alcotest.bool "rejoin handed future slots over" true
    (s.Session.handoff_slots > 0);
  check Alcotest.bool "rejoined node is alive" true
    (Session.node_alive session victim);
  check Alcotest.bool "some requests straddled nodes" true
    (s.Session.straddled > 0);
  check Alcotest.int "terminal conservation" s.Session.requests
    (s.Session.served + s.Session.expired)

let test_layout_invariance_standalone () =
  (* the same submission schedule gives identical outcome sequences on
     every cluster shape: placement cannot change decisions *)
  let run nodes =
    let session =
      Session.create ~strategy:(Session.Local_eager { compact = false })
        ~nodes ~n:8 ~d:4 ()
    in
    let rng = Rng.create ~seed:9 in
    let log = Buffer.create 256 in
    for round = 0 to 29 do
      if round < 20 then
        for _ = 1 to 4 do
          let a = Rng.int rng 8 in
          let b = (a + 1 + Rng.int rng 7) mod 8 in
          match
            Session.submit session ~alternatives:[ a; b ]
              ~deadline:(1 + Rng.int rng 4)
          with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "submit: %s" m
        done;
      let out = Session.step session in
      Buffer.add_string log
        (Printf.sprintf "t%d:%s/%s\n" out.Session.round
           (String.concat ","
              (List.map
                 (fun (id, res) -> Printf.sprintf "%d@%d" id res)
                 out.Session.served))
           (String.concat "," (List.map string_of_int out.Session.expired)))
    done;
    Buffer.contents log
  in
  let reference = run 1 in
  List.iter
    (fun nodes ->
       check Alcotest.string
         (Printf.sprintf "nodes=%d outcome log" nodes)
         reference (run nodes))
    [ 2; 3; 5 ]

let test_session_submit_validation () =
  let s = Session.create ~strategy:Session.Local_fix ~nodes:2 ~n:4 ~d:3 () in
  (match Session.submit s ~alternatives:[ 0; 1 ] ~deadline:3 with
   | Ok 0 -> ()
   | Ok id -> Alcotest.failf "first id should be 0, got %d" id
   | Error m -> Alcotest.failf "valid submit rejected: %s" m);
  List.iter
    (fun (alts, deadline, what) ->
       match Session.submit s ~alternatives:alts ~deadline with
       | Error _ -> ()
       | Ok _ -> Alcotest.failf "%s accepted" what)
    [
      ([ 0; 1 ], 0, "zero deadline");
      ([ 0; 1 ], 4, "deadline beyond d");
      ([ 0; 4 ], 2, "resource out of range");
      ([], 2, "no alternatives");
      ([ 1; 1 ], 2, "duplicate alternatives");
    ];
  (match Session.submit ~id:0 s ~alternatives:[ 0 ] ~deadline:1 with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "duplicate id accepted");
  match Session.submit ~id:7 s ~alternatives:[ 0 ] ~deadline:1 with
  | Ok 7 -> ()
  | Ok id -> Alcotest.failf "expected id 7, got %d" id
  | Error m -> Alcotest.failf "explicit id rejected: %s" m

(* ------------------------------------------------------------------ *)
(* serve-mode integration: the cluster as a server strategy *)

let fresh_sock_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "reqsched_cluster_%d_%d.sock" (Unix.getpid ()) !counter)

let with_cluster_server ~nodes ~n ~d f =
  let path = fresh_sock_path () in
  let cfg =
    {
      Server.addr = Server.Unix_sock path;
      n_resources = n;
      d;
      shards = 1;
      domains = 0;
      (* the cluster session owns the whole resource space; the server
         runs it on one shard and the router tier fans out internally *)
      strategy =
        (fun ~shard:_ ~metrics ->
          Session.factory ~metrics ~strategy:Session.Local_fix ~nodes ());
      tick = `Manual;
      queue_capacity = 1024;
      max_batch = 512;
      outbox_capacity = 4096;
      read_timeout = 10.0;
      name = "test-cluster";
    }
  in
  match Server.start cfg with
  | Error m -> Alcotest.failf "server start: %s" m
  | Ok srv ->
    let result =
      try f (Server.Unix_sock path)
      with e ->
        Server.drain srv;
        ignore (Server.wait srv);
        raise e
    in
    Server.drain srv;
    let snap = Server.wait srv in
    (try Sys.remove path with Sys_error _ -> ());
    (result, snap)

let counter snap name =
  match List.assoc_opt name snap with
  | Some (Obs.Metrics.Counter v) -> v
  | Some _ | None -> 0

let test_serve_mode_cluster () =
  let inst = random_instance ~n:8 ~d:4 ~rounds:25 ~load:1.4 ~seed:13 in
  let run nodes =
    let r, snap =
      with_cluster_server ~nodes ~n:8 ~d:4 (fun addr ->
          match Client.open_loop ~addr ~inst ~tick:`Manual () with
          | Error m -> Alcotest.failf "open_loop: %s" m
          | Ok r -> r)
    in
    (Client.render_decisions r, r, snap)
  in
  let decisions2, r, snap = run 2 in
  check Alcotest.int "every submission got exactly one terminal"
    r.Client.submitted
    (r.Client.scheduled + r.Client.rejected + r.Client.expired);
  check Alcotest.bool "something scheduled" true (r.Client.scheduled > 0);
  check Alcotest.int "cluster serves reached the merged snapshot"
    r.Client.scheduled
    (counter snap "cluster.served");
  check Alcotest.bool "cluster rounds metered" true
    (counter snap "cluster.comm_rounds" > 0);
  let decisions3, _, _ = run 3 in
  check Alcotest.string "decisions byte-identical across node layouts"
    decisions2 decisions3

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cluster"
    [
      ( "ring",
        [
          Alcotest.test_case "owner total" `Quick test_ring_owner_total;
          Alcotest.test_case "spread" `Quick test_ring_spread;
          test_ring_remove_moves_only_victims;
          test_ring_rejoin_restores_placement;
          Alcotest.test_case "moved exact" `Quick test_ring_moved_is_exact;
        ] );
      ( "wire",
        [
          test_wire_roundtrip;
          Alcotest.test_case "rejects" `Quick test_wire_rejects;
          Alcotest.test_case "oversize handoff" `Quick
            test_wire_oversize_via_render;
        ] );
      ( "transport",
        [
          test_net_transport_parity;
          Alcotest.test_case "dead node bounces" `Quick
            test_transport_dead_node_bounces;
        ] );
      ( "parity",
        [
          Alcotest.test_case "matches Localstrat on every layout" `Slow
            test_cluster_matches_local;
          Alcotest.test_case "layout-invariant outcomes" `Quick
            test_layout_invariance_standalone;
        ] );
      ( "theorems",
        [
          Alcotest.test_case "thm 3.7 live on 3 nodes" `Quick
            test_thm37_live_on_three_nodes;
          Alcotest.test_case "eager budgets live" `Quick
            test_eager_budget_live;
          Alcotest.test_case "proxy-global baseline" `Quick
            test_proxy_global_baseline;
        ] );
      ( "failure",
        [
          Alcotest.test_case "kill and rejoin, no lost terminals" `Quick
            test_kill_and_rejoin_loses_no_terminal;
          Alcotest.test_case "submit validation" `Quick
            test_session_submit_validation;
        ] );
      ( "serve",
        [
          Alcotest.test_case "cluster behind the server" `Quick
            test_serve_mode_cluster;
        ] );
    ]
