(* Tests for the core scheduling model: requests, instances, the round
   engine, outcomes and the paper graph. *)

module Request = Sched.Request
module Instance = Sched.Instance
module Engine = Sched.Engine
module Outcome = Sched.Outcome
module Strategy = Sched.Strategy
module Rng = Prelude.Rng

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Request *)

let test_request_make () =
  let r = Request.make ~arrival:3 ~alternatives:[ 1; 0 ] ~deadline:4 in
  check Alcotest.int "id unset" (-1) r.Request.id;
  check Alcotest.int "last round" 6 (Request.last_round r);
  check Alcotest.bool "live at arrival" true (Request.is_live r ~round:3);
  check Alcotest.bool "live at last" true (Request.is_live r ~round:6);
  check Alcotest.bool "dead after" false (Request.is_live r ~round:7);
  check Alcotest.bool "dead before" false (Request.is_live r ~round:2);
  check Alcotest.bool "has alt" true (Request.has_alternative r 0);
  check Alcotest.bool "no alt" false (Request.has_alternative r 2);
  (* order of alternatives is preserved: first alternative is 1 *)
  check Alcotest.int "first alternative" 1 r.Request.alternatives.(0)

let test_request_validation () =
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect_invalid "negative arrival" (fun () ->
      Request.make ~arrival:(-1) ~alternatives:[ 0 ] ~deadline:1);
  expect_invalid "zero deadline" (fun () ->
      Request.make ~arrival:0 ~alternatives:[ 0 ] ~deadline:0);
  expect_invalid "no alternatives" (fun () ->
      Request.make ~arrival:0 ~alternatives:[] ~deadline:1);
  expect_invalid "duplicate alternatives" (fun () ->
      Request.make ~arrival:0 ~alternatives:[ 1; 1 ] ~deadline:1);
  expect_invalid "negative resource" (fun () ->
      Request.make ~arrival:0 ~alternatives:[ -1 ] ~deadline:1)

(* ------------------------------------------------------------------ *)
(* Instance *)

let req ~arrival ~alts ~deadline =
  Request.make ~arrival ~alternatives:alts ~deadline

let test_instance_build () =
  let inst =
    Instance.build ~n_resources:3 ~d:2
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
        req ~arrival:0 ~alts:[ 1; 2 ] ~deadline:1;
        req ~arrival:2 ~alts:[ 2; 0 ] ~deadline:2;
      ]
  in
  check Alcotest.int "n requests" 3 (Instance.n_requests inst);
  check Alcotest.int "horizon" 4 inst.Instance.horizon;
  check Alcotest.int "ids dense" 1 inst.Instance.requests.(1).Request.id;
  check Alcotest.int "arrivals at 0" 2
    (Array.length (Instance.arrivals_at inst 0));
  check Alcotest.int "arrivals at 1" 0
    (Array.length (Instance.arrivals_at inst 1));
  check Alcotest.int "arrivals at 2" 1
    (Array.length (Instance.arrivals_at inst 2));
  check Alcotest.int "arrivals out of range" 0
    (Array.length (Instance.arrivals_at inst 99))

let test_instance_validation () =
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect_invalid "resource out of range" (fun () ->
      Instance.build ~n_resources:2 ~d:2
        [ req ~arrival:0 ~alts:[ 0; 2 ] ~deadline:2 ]);
  expect_invalid "deadline exceeds d" (fun () ->
      Instance.build ~n_resources:2 ~d:2
        [ req ~arrival:0 ~alts:[ 0 ] ~deadline:3 ]);
  expect_invalid "out of arrival order" (fun () ->
      Instance.build ~n_resources:2 ~d:2
        [
          req ~arrival:1 ~alts:[ 0 ] ~deadline:2;
          req ~arrival:0 ~alts:[ 1 ] ~deadline:2;
        ])

let test_instance_slots () =
  let inst =
    Instance.build ~n_resources:3 ~d:2
      [ req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2 ]
  in
  check Alcotest.int "total slots" 6 (Instance.total_slots inst);
  let idx = Instance.slot_index inst ~resource:2 ~round:1 in
  check Alcotest.(pair int int) "roundtrip" (2, 1)
    (Instance.slot_of_index inst idx);
  (* all slot indices are distinct *)
  let seen = Hashtbl.create 8 in
  for resource = 0 to 2 do
    for round = 0 to 1 do
      let i = Instance.slot_index inst ~resource ~round in
      check Alcotest.bool "unique" false (Hashtbl.mem seen i);
      Hashtbl.replace seen i ()
    done
  done

let test_instance_restrict_alternatives () =
  let inst =
    Instance.build ~n_resources:4 ~d:2
      [
        req ~arrival:0 ~alts:[ 3; 1; 0 ] ~deadline:2;
        req ~arrival:0 ~alts:[ 2 ] ~deadline:1;
      ]
  in
  let r1 = Instance.restrict_alternatives inst ~max:2 in
  check Alcotest.(list int) "truncated, order kept" [ 3; 1 ]
    (Array.to_list r1.Instance.requests.(0).Request.alternatives);
  check Alcotest.(list int) "short lists untouched" [ 2 ]
    (Array.to_list r1.Instance.requests.(1).Request.alternatives);
  (* optimum can only shrink when choices are removed *)
  check Alcotest.bool "optimum monotone" true
    (Offline.Opt.value r1 <= Offline.Opt.value inst);
  match Instance.restrict_alternatives inst ~max:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "max=0 accepted"

let test_outcome_latency () =
  let inst =
    Instance.build ~n_resources:1 ~d:3
      [
        req ~arrival:0 ~alts:[ 0 ] ~deadline:3;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:3;
        req ~arrival:0 ~alts:[ 0 ] ~deadline:3;
      ]
  in
  let o = Engine.run inst (Strategies.Global.balance ()) in
  check Alcotest.(list int) "latencies 0,1,2" [ 0; 1; 2 ]
    (List.sort compare (Outcome.latencies o));
  check (Alcotest.float 1e-9) "mean latency" 1.0 (Outcome.mean_latency o);
  let empty = Instance.build ~n_resources:1 ~d:1 [] in
  let oe = Engine.run empty (Strategies.Global.balance ()) in
  check Alcotest.bool "nan when empty" true
    (Float.is_nan (Outcome.mean_latency oe))

let test_instance_concat () =
  let part =
    Instance.build ~n_resources:2 ~d:2
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
        req ~arrival:1 ~alts:[ 1; 0 ] ~deadline:2;
      ]
  in
  let whole = Instance.concat [ part; part; part ] in
  check Alcotest.int "requests tripled" 6 (Instance.n_requests whole);
  check Alcotest.int "horizon summed" 9 whole.Instance.horizon;
  (* second copy shifted by the first part's horizon (3) *)
  check Alcotest.int "shifted arrival" 3
    whole.Instance.requests.(2).Request.arrival

(* ------------------------------------------------------------------ *)
(* Engine: protocol validation *)

let one_shot_strategy serves : Strategy.factory =
 fun ~n:_ ~d:_ ->
  {
    Strategy.name = "test";
    step =
      (fun ~round ~arrivals:_ ->
         List.filter_map
           (fun (at, s) -> if at = round then Some s else None)
           serves);
  }

let simple_instance () =
  Instance.build ~n_resources:2 ~d:2
    [
      req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
      req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
    ]

let test_engine_accepts_valid () =
  let inst = simple_instance () in
  let o =
    Engine.run inst
      (one_shot_strategy
         [
           (0, { Strategy.request = 0; resource = 0 });
           (1, { Strategy.request = 1; resource = 1 });
         ])
  in
  check Alcotest.int "served both" 2 o.Outcome.served;
  check Alcotest.bool "consistent" true (Outcome.is_consistent o);
  check Alcotest.int "failed" 0 (Outcome.failed o);
  check Alcotest.(list int) "served ids" [ 0; 1 ] (Outcome.served_ids o)

let expect_protocol_error f =
  match f () with
  | exception Engine.Protocol_error _ -> ()
  | _ -> Alcotest.fail "expected Protocol_error"

let test_engine_rejects_bad_resource () =
  let inst = simple_instance () in
  expect_protocol_error (fun () ->
      Engine.run inst
        (one_shot_strategy [ (0, { Strategy.request = 0; resource = 5 }) ]))

let test_engine_rejects_unknown_request () =
  let inst = simple_instance () in
  expect_protocol_error (fun () ->
      Engine.run inst
        (one_shot_strategy [ (0, { Strategy.request = 9; resource = 0 }) ]))

let test_engine_rejects_double_resource_use () =
  let inst = simple_instance () in
  expect_protocol_error (fun () ->
      Engine.run inst
        (one_shot_strategy
           [
             (0, { Strategy.request = 0; resource = 0 });
             (0, { Strategy.request = 1; resource = 0 });
           ]))

let test_engine_rejects_expired () =
  (* request 0 has window {round 0} only; request 1 extends the horizon
     so the engine actually reaches round 1 *)
  let inst2 =
    Instance.build ~n_resources:2 ~d:2
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:1;
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
      ]
  in
  expect_protocol_error (fun () ->
      Engine.run inst2
        (one_shot_strategy [ (1, { Strategy.request = 0; resource = 0 }) ]))

let test_engine_wasted_duplicates () =
  let inst = simple_instance () in
  let o =
    Engine.run inst
      (one_shot_strategy
         [
           (0, { Strategy.request = 0; resource = 0 });
           (1, { Strategy.request = 0; resource = 1 });
         ])
  in
  check Alcotest.int "served once" 1 o.Outcome.served;
  check Alcotest.int "wasted" 1 o.Outcome.wasted

let test_engine_not_alternative () =
  let inst2 =
    Instance.build ~n_resources:3 ~d:2
      [ req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2 ]
  in
  expect_protocol_error (fun () ->
      Engine.run inst2
        (one_shot_strategy [ (0, { Strategy.request = 0; resource = 2 }) ]))

(* ------------------------------------------------------------------ *)
(* Engine: adaptive mode *)

let test_engine_adaptive_ids_and_instance () =
  (* the adversary emits one request per round; ids must mirror the
     engine's numbering, and the realised instance must match *)
  let emitted = ref [] in
  let adversary ~round ~is_served =
    (* ids are assigned in emission order, so request [round - 1]
       arrived last round *)
    if round > 0 then
      emitted := (round - 1, is_served (round - 1)) :: !emitted;
    [ Request.make ~arrival:round ~alternatives:[ 0; 1 ] ~deadline:2 ]
  in
  let greedy : Strategy.factory =
   fun ~n:_ ~d:_ ->
    let pending = ref [] in
    {
      Strategy.name = "greedy0";
      step =
        (fun ~round ~arrivals ->
           pending := !pending @ Array.to_list arrivals;
           match !pending with
           | r :: rest when Request.is_live r ~round ->
             pending := rest;
             [ { Strategy.request = r.Request.id; resource = 0 } ]
           | _ -> []);
    }
  in
  let o =
    Engine.run_adaptive ~n:2 ~d:2 ~last_arrival_round:5 ~adversary greedy
  in
  check Alcotest.int "six requests realised" 6
    (Instance.n_requests o.Outcome.instance);
  (* every previous round's request had been served when queried *)
  List.iter
    (fun (_, was_served) ->
       check Alcotest.bool "adversary observed service" true was_served)
    !emitted;
  check Alcotest.bool "outcome consistent" true (Outcome.is_consistent o)

let test_engine_adaptive_trailing_empty_rounds () =
  (* an adversary that stops emitting after round 1: the engine must
     still run the remaining rounds (services may land there) and build
     the realised instance from what was actually emitted *)
  let adversary ~round ~is_served:_ =
    if round <= 1 then
      [ Request.make ~arrival:round ~alternatives:[ 0; 1 ] ~deadline:2 ]
    else []
  in
  let greedy : Strategy.factory =
   fun ~n:_ ~d:_ ->
    let pending = ref [] in
    {
      Strategy.name = "greedy0";
      step =
        (fun ~round ~arrivals ->
           pending := !pending @ Array.to_list arrivals;
           match !pending with
           | r :: rest when Request.is_live r ~round ->
             pending := rest;
             [ { Strategy.request = r.Request.id; resource = 0 } ]
           | _ -> []);
    }
  in
  let o =
    Engine.run_adaptive ~n:2 ~d:2 ~last_arrival_round:6 ~adversary greedy
  in
  check Alcotest.int "two requests realised" 2
    (Instance.n_requests o.Outcome.instance);
  check Alcotest.int "both served" 2 o.Outcome.served;
  check Alcotest.bool "consistent" true (Outcome.is_consistent o)

let test_engine_adaptive_no_arrivals_at_all () =
  let adversary ~round:_ ~is_served:_ = [] in
  let o =
    Engine.run_adaptive ~n:3 ~d:2 ~last_arrival_round:4 ~adversary
      (one_shot_strategy [])
  in
  check Alcotest.int "empty instance" 0 (Instance.n_requests o.Outcome.instance);
  check Alcotest.int "nothing served" 0 o.Outcome.served;
  check Alcotest.bool "consistent" true (Outcome.is_consistent o)

let test_engine_adaptive_protocol_errors () =
  (* each illegal-service class must also be caught in adaptive mode,
     where the id space is still growing *)
  let one_request_adversary ~round ~is_served:_ =
    if round = 0 then
      [ Request.make ~arrival:0 ~alternatives:[ 0 ] ~deadline:1 ]
    else []
  in
  let run strategy =
    Engine.run_adaptive ~n:2 ~d:2 ~last_arrival_round:1
      ~adversary:one_request_adversary strategy
  in
  (* unknown (not yet emitted) request id *)
  expect_protocol_error (fun () ->
      run (one_shot_strategy [ (0, { Strategy.request = 7; resource = 0 }) ]));
  (* expired: request 0's window is round 0 only *)
  expect_protocol_error (fun () ->
      run (one_shot_strategy [ (1, { Strategy.request = 0; resource = 0 }) ]));
  (* foreign resource: 1 is not an alternative of request 0 *)
  expect_protocol_error (fun () ->
      run (one_shot_strategy [ (0, { Strategy.request = 0; resource = 1 }) ]));
  (* resource out of range *)
  expect_protocol_error (fun () ->
      run (one_shot_strategy [ (0, { Strategy.request = 0; resource = 9 }) ]))

let test_engine_adaptive_rejects_wrong_arrival () =
  let adversary ~round ~is_served:_ =
    [ Request.make ~arrival:(round + 1) ~alternatives:[ 0 ] ~deadline:1 ]
  in
  match
    Engine.run_adaptive ~n:1 ~d:1 ~last_arrival_round:1 ~adversary
      (one_shot_strategy [])
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)
(* Outcome / Paper_graph *)

let test_paper_graph_shape () =
  let inst =
    Instance.build ~n_resources:3 ~d:2
      [
        req ~arrival:0 ~alts:[ 0; 1 ] ~deadline:2;
        req ~arrival:1 ~alts:[ 2 ] ~deadline:1;
      ]
  in
  let g = Sched.Paper_graph.of_instance inst in
  (* request 0: 2 alternatives x 2 rounds; request 1: 1 x 1 *)
  check Alcotest.int "edges" 5 (Graph.Bipartite.n_edges g);
  check Alcotest.int "left = requests" 2 (Graph.Bipartite.n_left g);
  check Alcotest.int "right = slots" (Instance.total_slots inst)
    (Graph.Bipartite.n_right g);
  (match Sched.Paper_graph.edge_for g inst ~request:0 ~resource:1 ~round:1 with
   | Some _ -> ()
   | None -> Alcotest.fail "edge should exist");
  (match Sched.Paper_graph.edge_for g inst ~request:1 ~resource:2 ~round:0 with
   | None -> ()
   | Some _ -> Alcotest.fail "edge outside window")

let test_outcome_to_matching () =
  let inst = simple_instance () in
  let o =
    Engine.run inst
      (one_shot_strategy
         [
           (0, { Strategy.request = 0; resource = 0 });
           (0, { Strategy.request = 1; resource = 1 });
         ])
  in
  let g, m = Outcome.to_matching o in
  check Alcotest.bool "valid matching" true (Graph.Matching.is_valid g m);
  check Alcotest.int "two edges" 2 (Graph.Matching.size m)

(* ------------------------------------------------------------------ *)
(* properties: random instances, random greedy strategies *)

let instance_gen =
  QCheck.Gen.(
    int_range 1 5 >>= fun n ->
    int_range 1 4 >>= fun d ->
    int_range 0 40 >>= fun n_req ->
    int_range 0 1000 >>= fun seed ->
    return (n, d, n_req, seed))

let build_random (n, d, n_req, seed) =
  let rng = Rng.create ~seed in
  let protos = ref [] in
  let arrival = ref 0 in
  for _ = 1 to n_req do
    arrival := !arrival + Rng.int rng 2;
    let deadline = 1 + Rng.int rng d in
    let a = Rng.int rng n in
    let alts =
      if n > 1 && Rng.bool rng then [ a; (a + 1 + Rng.int rng (n - 1)) mod n ]
      else [ a ]
    in
    protos :=
      Request.make ~arrival:!arrival ~alternatives:alts ~deadline :: !protos
  done;
  Instance.build ~n_resources:n ~d (List.rev !protos)

let instance_arb =
  QCheck.make instance_gen ~print:(fun (n, d, n_req, seed) ->
      Printf.sprintf "n=%d d=%d req=%d seed=%d" n d n_req seed)

let prop_engine_consistency_all_strategies =
  qtest ~count:60 "engine outcomes are always consistent" instance_arb
    (fun spec ->
       let inst = build_random spec in
       List.for_all
         (fun factory ->
            let o = Engine.run inst factory in
            Outcome.is_consistent o)
         [
           Strategies.Global.fix ();
           Strategies.Global.current ();
           Strategies.Global.eager ();
           Strategies.Global.balance ();
           Strategies.Edf.independent ();
         ])

let prop_served_never_exceeds_opt =
  qtest ~count:60 "no strategy ever beats the offline optimum" instance_arb
    (fun spec ->
       let inst = build_random spec in
       let opt = Offline.Opt.value inst in
       List.for_all
         (fun factory -> (Engine.run inst factory).Outcome.served <= opt)
         [
           Strategies.Global.fix ();
           Strategies.Global.balance ();
           Strategies.Edf.independent ();
           Localstrat.Local.eager ();
         ])

(* ------------------------------------------------------------------ *)
(* codec: the trace format shared with the wire protocol *)

let test_codec_roundtrip_simple () =
  let inst = simple_instance () in
  let s = Sched.Codec.to_string inst in
  match Sched.Codec.of_string s with
  | Error m -> Alcotest.failf "of_string failed: %s" m
  | Ok inst' ->
    check Alcotest.int "n" inst.Instance.n_resources inst'.Instance.n_resources;
    check Alcotest.int "d" inst.Instance.d inst'.Instance.d;
    check Alcotest.string "canonical" s (Sched.Codec.to_string inst')

let test_codec_rejects () =
  let expect_error what s =
    match Sched.Codec.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected parse error" what
  in
  expect_error "empty" "";
  expect_error "bad version" "instance rsp/9 n=2 d=1 requests=0\nend\n";
  expect_error "count mismatch"
    "instance rsp/1 n=2 d=1 requests=2\nreq 0 0 1\nend\n";
  expect_error "missing end" "instance rsp/1 n=2 d=1 requests=0\n";
  expect_error "negative resource"
    "instance rsp/1 n=2 d=1 requests=1\nreq 0 -1 1\nend\n";
  expect_error "resource out of range"
    "instance rsp/1 n=2 d=1 requests=1\nreq 0 5 1\nend\n";
  expect_error "deadline above d"
    "instance rsp/1 n=2 d=1 requests=1\nreq 0 0 3\nend\n"

let prop_codec_roundtrip =
  qtest ~count:100 "codec round-trips any instance" instance_arb
    (fun spec ->
       let inst = build_random spec in
       let s = Sched.Codec.to_string inst in
       match Sched.Codec.of_string s with
       | Error m -> QCheck.Test.fail_reportf "of_string: %s" m
       | Ok inst' ->
         inst'.Instance.n_resources = inst.Instance.n_resources
         && inst'.Instance.d = inst.Instance.d
         && Sched.Codec.to_string inst' = s
         && Array.for_all2
              (fun (a : Request.t) (b : Request.t) ->
                 a.Request.arrival = b.Request.arrival
                 && a.Request.deadline = b.Request.deadline
                 && a.Request.alternatives = b.Request.alternatives)
              inst.Instance.requests inst'.Instance.requests)

(* ------------------------------------------------------------------ *)
(* live engine: differential against the batch engine *)

(* Feed an instance's arrival schedule through Engine.Live round by
   round and collect the terminal outcomes. *)
let drive_live inst factory =
  let live =
    Engine.Live.create ~n:inst.Instance.n_resources ~d:inst.Instance.d
      factory
  in
  let served = Hashtbl.create 64 and expired = ref [] in
  let horizon = inst.Instance.horizon in
  (* run d extra rounds so the last arrivals' windows close too *)
  for round = 0 to horizon + inst.Instance.d do
    if round < horizon then
      Array.iter
        (fun (r : Request.t) ->
           match
             Engine.Live.submit live
               ~alternatives:(Array.to_list r.Request.alternatives)
               ~deadline:r.Request.deadline
           with
           | Ok id -> check Alcotest.int "dense ids" r.Request.id id
           | Error m -> Alcotest.failf "submit rejected: %s" m)
        (Instance.arrivals_at inst round);
    let o = Engine.Live.step live in
    check Alcotest.int "round echoed" round o.Engine.Live.round;
    List.iter
      (fun (id, res) -> Hashtbl.replace served id (res, round))
      o.Engine.Live.served;
    expired := o.Engine.Live.expired @ !expired
  done;
  (live, served, !expired)

let prop_live_matches_batch =
  qtest ~count:80 "live engine agrees with the batch engine" instance_arb
    (fun spec ->
       let inst = build_random spec in
       let factory = Strategies.Global.balance () in
       let batch = Engine.run inst factory in
       let live, served, expired = drive_live inst factory in
       (* identical service decisions, request by request *)
       Array.iteri
         (fun id sv ->
            let live_sv = Hashtbl.find_opt served id in
            if sv <> live_sv then
              QCheck.Test.fail_reportf
                "request %d: batch %s, live %s" id
                (match sv with
                 | Some (res, r) -> Printf.sprintf "S%d@%d" res r
                 | None -> "unserved")
                (match live_sv with
                 | Some (res, r) -> Printf.sprintf "S%d@%d" res r
                 | None -> "unserved"))
         batch.Outcome.served_at;
       batch.Outcome.served = Hashtbl.length served
       && List.length expired = Instance.n_requests inst - batch.Outcome.served
       && Engine.Live.pending live = 0
       && Engine.Live.submitted live = Instance.n_requests inst)

let test_live_validation () =
  let live = Engine.Live.create ~n:4 ~d:2 (Strategies.Global.balance ()) in
  (match Engine.Live.submit live ~alternatives:[ 0; 9 ] ~deadline:1 with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "resource out of range accepted");
  (match Engine.Live.submit live ~alternatives:[ 0 ] ~deadline:3 with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "deadline above d accepted");
  (match Engine.Live.submit live ~alternatives:[] ~deadline:1 with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "empty alternatives accepted");
  check Alcotest.int "nothing admitted" 0 (Engine.Live.pending live);
  match Engine.Live.submit live ~alternatives:[ 1; 2 ] ~deadline:2 with
  | Error m -> Alcotest.failf "valid submit rejected: %s" m
  | Ok id ->
    check Alcotest.int "first id" 0 id;
    let o = Engine.Live.step live in
    check Alcotest.bool "served on first step" true
      (List.mem_assoc 0 o.Engine.Live.served);
    check Alcotest.bool "is_served" true (Engine.Live.is_served live 0)

(* Sustained 3x overload: the expired outcomes must account for exactly
   the requests the engine could not serve — served + expired conserves
   submitted once every window has closed, expired lists are ascending
   and never name a served request.  Violation-rate scoring
   (Analysis.Slo) is built on this accounting. *)
let test_live_overload_accounting () =
  let n = 4 and d = 3 and rounds = 60 in
  let live = Engine.Live.create ~n ~d (Strategies.Global.balance ()) in
  let served = Hashtbl.create 256 in
  let expired = Hashtbl.create 256 in
  let submitted = ref 0 in
  let absorb (o : Engine.Live.outcome) =
    check Alcotest.bool "expired ids ascending" true
      (List.sort compare o.expired = o.expired);
    List.iter
      (fun (id, _) ->
         check Alcotest.bool "served at most once" false
           (Hashtbl.mem served id);
         Hashtbl.add served id ())
      o.served;
    List.iter
      (fun id ->
         check Alcotest.bool "expired request was never served" false
           (Hashtbl.mem served id || Engine.Live.is_served live id);
         check Alcotest.bool "expired at most once" false
           (Hashtbl.mem expired id);
         Hashtbl.add expired id ())
      o.expired
  in
  for round = 0 to rounds - 1 do
    (* 3x capacity: 3n requests per round, pairs rotating with the
       round so every resource stays saturated *)
    for j = 0 to (3 * n) - 1 do
      let a = (round + j) mod n in
      let b = (a + 1 + (j mod (n - 1))) mod n in
      match Engine.Live.submit live ~alternatives:[ a; b ] ~deadline:d with
      | Ok _ -> incr submitted
      | Error m -> Alcotest.failf "overload submit rejected: %s" m
    done;
    absorb (Engine.Live.step live)
  done;
  (* drain: d more rounds with no arrivals close every open window *)
  for _ = 1 to d do
    absorb (Engine.Live.step live)
  done;
  check Alcotest.int "submitted as planned" (3 * n * rounds) !submitted;
  check Alcotest.int "every request reached a terminal outcome"
    !submitted
    (Hashtbl.length served + Hashtbl.length expired);
  check Alcotest.int "nothing left pending" 0 (Engine.Live.pending live);
  check Alcotest.int "submitted counter agrees" !submitted
    (Engine.Live.submitted live);
  (* under saturation the matching serves all n resources every main
     round; drain rounds add at most n * d more *)
  check Alcotest.bool "full utilisation under overload" true
    (let s = Hashtbl.length served in
     s >= n * rounds && s <= n * (rounds + d))

let () =
  Alcotest.run "sched"
    [
      ( "request",
        [
          Alcotest.test_case "make" `Quick test_request_make;
          Alcotest.test_case "validation" `Quick test_request_validation;
        ] );
      ( "instance",
        [
          Alcotest.test_case "build" `Quick test_instance_build;
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "slots" `Quick test_instance_slots;
          Alcotest.test_case "concat" `Quick test_instance_concat;
          Alcotest.test_case "restrict alternatives" `Quick
            test_instance_restrict_alternatives;
          Alcotest.test_case "latency" `Quick test_outcome_latency;
        ] );
      ( "engine",
        [
          Alcotest.test_case "accepts valid" `Quick test_engine_accepts_valid;
          Alcotest.test_case "rejects bad resource" `Quick
            test_engine_rejects_bad_resource;
          Alcotest.test_case "rejects unknown request" `Quick
            test_engine_rejects_unknown_request;
          Alcotest.test_case "rejects double use" `Quick
            test_engine_rejects_double_resource_use;
          Alcotest.test_case "rejects expired" `Quick test_engine_rejects_expired;
          Alcotest.test_case "counts duplicates as waste" `Quick
            test_engine_wasted_duplicates;
          Alcotest.test_case "rejects non-alternative" `Quick
            test_engine_not_alternative;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "ids and instance" `Quick
            test_engine_adaptive_ids_and_instance;
          Alcotest.test_case "rejects wrong arrival" `Quick
            test_engine_adaptive_rejects_wrong_arrival;
          Alcotest.test_case "trailing empty rounds" `Quick
            test_engine_adaptive_trailing_empty_rounds;
          Alcotest.test_case "no arrivals at all" `Quick
            test_engine_adaptive_no_arrivals_at_all;
          Alcotest.test_case "protocol errors" `Quick
            test_engine_adaptive_protocol_errors;
        ] );
      ( "outcome",
        [
          Alcotest.test_case "paper graph shape" `Quick test_paper_graph_shape;
          Alcotest.test_case "to_matching" `Quick test_outcome_to_matching;
        ] );
      ( "properties",
        [
          prop_engine_consistency_all_strategies;
          prop_served_never_exceeds_opt;
        ] );
      ( "codec",
        [
          Alcotest.test_case "round-trip simple" `Quick
            test_codec_roundtrip_simple;
          Alcotest.test_case "rejects malformed" `Quick test_codec_rejects;
          prop_codec_roundtrip;
        ] );
      ( "live",
        [
          Alcotest.test_case "submit validation" `Quick test_live_validation;
          Alcotest.test_case "overload accounting" `Quick
            test_live_overload_accounting;
          prop_live_matches_batch;
        ] );
    ]
