(* Tests for the bounded-bandwidth communication model: capacity
   enforcement, the LDF overflow rule, tie-breaking, tagged bypass and
   the traffic meters. *)

module Net = Distnet.Net

let check = Alcotest.check

let msg ?(tagged = false) ~sender ~dst ~deadline payload =
  { Net.sender; dst; deadline_key = deadline; tagged; payload }

let delivered results =
  List.filter_map (fun (m, ok) -> if ok then Some m.Net.sender else None)
    results
  |> List.sort compare

let bounced results =
  List.filter_map (fun (m, ok) -> if ok then None else Some m.Net.sender)
    results
  |> List.sort compare

let test_all_delivered_under_capacity () =
  let net = Net.create ~n:2 ~capacity:3 () in
  let results =
    Net.exchange net
      [
        msg ~sender:0 ~dst:0 ~deadline:5 ();
        msg ~sender:1 ~dst:0 ~deadline:5 ();
        msg ~sender:2 ~dst:1 ~deadline:5 ();
      ]
  in
  check Alcotest.(list int) "all delivered" [ 0; 1; 2 ] (delivered results);
  check Alcotest.int "one comm round" 1 (Net.comm_rounds net);
  check Alcotest.int "messages counted" 3 (Net.messages_sent net);
  check Alcotest.int "none bounced" 0 (Net.messages_bounced net)

let test_capacity_cut_ldf () =
  (* capacity 2, three messages; the latest deadlines win *)
  let net = Net.create ~n:1 ~capacity:2 () in
  let results =
    Net.exchange net
      [
        msg ~sender:0 ~dst:0 ~deadline:3 ();
        msg ~sender:1 ~dst:0 ~deadline:9 ();
        msg ~sender:2 ~dst:0 ~deadline:7 ();
      ]
  in
  check Alcotest.(list int) "latest deadlines kept" [ 1; 2 ]
    (delivered results);
  check Alcotest.(list int) "earliest bounced" [ 0 ] (bounced results);
  check Alcotest.int "bounce counted" 1 (Net.messages_bounced net)

let test_tie_break_by_priority_then_id () =
  let priority ~sender ~dst:_ = if sender = 5 then 10 else 0 in
  let net = Net.create ~n:1 ~capacity:2 ~priority () in
  let results =
    Net.exchange net
      [
        msg ~sender:3 ~dst:0 ~deadline:4 ();
        msg ~sender:4 ~dst:0 ~deadline:4 ();
        msg ~sender:5 ~dst:0 ~deadline:4 ();
      ]
  in
  (* all deadlines equal: priority keeps 5, then lowest id keeps 3 *)
  check Alcotest.(list int) "priority then id" [ 3; 5 ] (delivered results)

let test_tagged_bypass () =
  let net = Net.create ~n:1 ~capacity:1 () in
  let results =
    Net.exchange net
      [
        msg ~sender:0 ~dst:0 ~deadline:9 ();
        msg ~tagged:true ~sender:1 ~dst:0 ~deadline:1 ();
      ]
  in
  (* the tagged message does not consume capacity: both arrive *)
  check Alcotest.(list int) "tagged plus one" [ 0; 1 ] (delivered results)

let test_empty_exchange_free () =
  let net = Net.create ~n:2 ~capacity:1 () in
  check Alcotest.int "no results" 0 (List.length (Net.exchange net []));
  check Alcotest.int "no comm round" 0 (Net.comm_rounds net);
  Net.tick net;
  check Alcotest.int "tick counts" 1 (Net.comm_rounds net)

let test_per_destination_capacity () =
  (* capacity applies per resource, not globally *)
  let net = Net.create ~n:2 ~capacity:1 () in
  let results =
    Net.exchange net
      [
        msg ~sender:0 ~dst:0 ~deadline:5 ();
        msg ~sender:1 ~dst:1 ~deadline:5 ();
        msg ~sender:2 ~dst:0 ~deadline:9 ();
      ]
  in
  check Alcotest.(list int) "one per destination" [ 1; 2 ] (delivered results)

(* Regression: the delivered set used to be keyed by (sender, dst), so
   two messages from the same sender to the same resource were
   indistinguishable — when capacity cut one of them, BOTH came back
   marked delivered.  Delivery status must be per message. *)
let test_duplicate_sender_dst_over_capacity () =
  let net = Net.create ~n:1 ~capacity:1 () in
  let results =
    Net.exchange net
      [
        msg ~sender:0 ~dst:0 ~deadline:3 ();
        msg ~sender:0 ~dst:0 ~deadline:9 ();
      ]
  in
  check
    Alcotest.(list bool)
    "exactly the later-deadline copy delivered" [ false; true ]
    (List.map snd results);
  check Alcotest.int "one bounce counted" 1 (Net.messages_bounced net);
  (* same shape, more copies than capacity: delivered + bounced must
     partition the batch *)
  let net = Net.create ~n:1 ~capacity:2 () in
  let results =
    Net.exchange net
      (List.init 5 (fun i -> msg ~sender:3 ~dst:0 ~deadline:(10 + i) ()))
  in
  let ok = List.filter snd results and ko = List.filter (fun (_, d) -> not d) results in
  check Alcotest.int "capacity-many delivered" 2 (List.length ok);
  check Alcotest.int "rest bounced" 3 (List.length ko);
  check
    Alcotest.(list bool)
    "latest deadlines kept" [ false; false; false; true; true ]
    (List.map snd results)

let test_reset_counters () =
  let net = Net.create ~n:1 ~capacity:1 () in
  ignore (Net.exchange net [ msg ~sender:0 ~dst:0 ~deadline:1 () ]);
  Net.reset_counters net;
  check Alcotest.int "rounds reset" 0 (Net.comm_rounds net);
  check Alcotest.int "messages reset" 0 (Net.messages_sent net)

let test_validation () =
  (match Net.create ~n:0 ~capacity:1 () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "n=0 accepted");
  (match Net.create ~n:1 ~capacity:0 () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "capacity=0 accepted");
  let net = Net.create ~n:1 ~capacity:1 () in
  match Net.exchange net [ msg ~sender:0 ~dst:7 ~deadline:1 () ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad destination accepted"

let test_loss_drops_untagged_only () =
  let rng = Prelude.Rng.create ~seed:4 in
  let net = Net.create ~n:1 ~capacity:100 ~loss:1.0 ~loss_rng:rng () in
  let results =
    Net.exchange net
      [
        msg ~sender:0 ~dst:0 ~deadline:5 ();
        msg ~tagged:true ~sender:1 ~dst:0 ~deadline:5 ();
      ]
  in
  check Alcotest.(list int) "only the tagged survives total loss" [ 1 ]
    (delivered results);
  check Alcotest.(list int) "untagged dropped" [ 0 ] (bounced results)

let test_loss_zero_is_lossless () =
  let net = Net.create ~n:1 ~capacity:10 ~loss:0.0 () in
  let results =
    Net.exchange net (List.init 5 (fun i -> msg ~sender:i ~dst:0 ~deadline:1 ()))
  in
  check Alcotest.int "all delivered" 5 (List.length (delivered results))

let test_loss_statistics () =
  let rng = Prelude.Rng.create ~seed:5 in
  let net = Net.create ~n:1 ~capacity:10_000 ~loss:0.3 ~loss_rng:rng () in
  let results =
    Net.exchange net
      (List.init 10_000 (fun i -> msg ~sender:i ~dst:0 ~deadline:1 ()))
  in
  let dropped = List.length (bounced results) in
  check Alcotest.bool "about 30% dropped" true
    (abs (dropped - 3000) < 300)

let test_loss_validation () =
  match Net.create ~n:1 ~capacity:1 ~loss:1.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "loss > 1 accepted"

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let prop_capacity_never_exceeded =
  qtest "at most capacity untagged messages delivered per resource"
    QCheck.(triple (int_range 1 4) (int_range 1 4)
              (list_of_size Gen.(int_range 0 25)
                 (pair (int_range 0 3) (int_range 0 9))))
    (fun (n, capacity, raw) ->
       let net = Net.create ~n ~capacity () in
       let msgs =
         List.mapi
           (fun i (dst, deadline) ->
              msg ~sender:i ~dst:(dst mod n) ~deadline ())
           raw
       in
       let results = Net.exchange net msgs in
       let per_dst = Array.make n 0 in
       List.iter
         (fun (m, ok) ->
            if ok then per_dst.(m.Net.dst) <- per_dst.(m.Net.dst) + 1)
         results;
       Array.for_all (fun c -> c <= capacity) per_dst)

let prop_ldf_dominance =
  qtest "every delivered untagged message has deadline >= every bounced \
         one at the same resource"
    QCheck.(pair (int_range 1 3)
              (list_of_size Gen.(int_range 0 20)
                 (pair (int_range 0 1) (int_range 0 9))))
    (fun (capacity, raw) ->
       let net = Net.create ~n:2 ~capacity () in
       let msgs =
         List.mapi
           (fun i (dst, deadline) -> msg ~sender:i ~dst ~deadline ())
           raw
       in
       let results = Net.exchange net msgs in
       List.for_all
         (fun (m, ok) ->
            ok
            || List.for_all
                 (fun (m', ok') ->
                    (not ok') || m'.Net.dst <> m.Net.dst
                    || m'.Net.deadline_key >= m.Net.deadline_key)
                 results)
         results)

let () =
  Alcotest.run "distnet"
    [
      ( "unit",
        [
          Alcotest.test_case "under capacity" `Quick
            test_all_delivered_under_capacity;
          Alcotest.test_case "LDF cut" `Quick test_capacity_cut_ldf;
          Alcotest.test_case "tie break" `Quick
            test_tie_break_by_priority_then_id;
          Alcotest.test_case "tagged bypass" `Quick test_tagged_bypass;
          Alcotest.test_case "empty exchange" `Quick test_empty_exchange_free;
          Alcotest.test_case "per destination" `Quick
            test_per_destination_capacity;
          Alcotest.test_case "duplicate sender/dst over capacity" `Quick
            test_duplicate_sender_dst_over_capacity;
          Alcotest.test_case "reset" `Quick test_reset_counters;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "loss",
        [
          Alcotest.test_case "drops untagged only" `Quick
            test_loss_drops_untagged_only;
          Alcotest.test_case "zero is lossless" `Quick
            test_loss_zero_is_lossless;
          Alcotest.test_case "statistics" `Quick test_loss_statistics;
          Alcotest.test_case "validation" `Quick test_loss_validation;
        ] );
      ("properties", [ prop_capacity_never_exceeded; prop_ldf_dominance ]);
    ]
