(* The reqsched command line.

   Subcommands:
     run      run one strategy on a workload and print the outcome
     compare  run every strategy on one workload
     exp      run reproduction experiments by id
     table1   print the paper's Table 1 bounds for a given d
     trace    round-by-round trace of a strategy on a small workload *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* shared arguments *)

let d_arg =
  let doc = "Deadline d (each request must be served within d rounds)." in
  Arg.(value & opt int 4 & info [ "d"; "deadline" ] ~docv:"D" ~doc)

let n_arg =
  let doc = "Number of resources." in
  Arg.(value & opt int 8 & info [ "n"; "resources" ] ~docv:"N" ~doc)

let rounds_arg =
  let doc = "Number of arrival rounds for random workloads." in
  Arg.(value & opt int 100 & info [ "rounds" ] ~docv:"ROUNDS" ~doc)

let load_arg =
  let doc = "Mean arrivals per round divided by n (1.0 saturates)." in
  Arg.(value & opt float 1.1 & info [ "load" ] ~docv:"LOAD" ~doc)

let seed_arg =
  let doc = "PRNG seed (runs are fully deterministic given the seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let strategy_names = Report.Registry.strategy_names

let strategy_arg =
  let doc =
    Printf.sprintf "Strategy: one of %s." (String.concat ", " strategy_names)
  in
  Arg.(value & opt string "balance" & info [ "s"; "strategy" ] ~docv:"S" ~doc)

let workload_arg =
  let doc =
    "Workload: uniform, zipf, bursty, a theorem adversary (thm21, thm22, \
     thm23, thm24, thm25, thm37), or a zoo family (hotspot, diurnal, vod, \
     overload, mix)."
  in
  Arg.(value & opt string "uniform" & info [ "w"; "workload" ] ~docv:"W" ~doc)

let score_arg =
  let doc =
    Printf.sprintf
      "Also score on an SLO objective: %s.  $(b,slo) reports the whole \
       block (deadline-violation rate, sustained throughput, ANTT, max \
       delay factor, machines-needed lower bound)."
      (String.concat ", " Analysis.Slo.selector_names)
  in
  Arg.(value & opt (some string) None & info [ "score" ] ~docv:"MODE" ~doc)

let with_score score k =
  match score with
  | None -> k None
  | Some name ->
    (match Analysis.Slo.selector_of_name name with
     | Error m -> `Error (false, m)
     | Ok s -> k (Some s))

let solver_arg =
  let doc =
    "Solver for the global strategies: kernel (warm-start incremental \
     round kernel, the default) or rebuild (the from-scratch \
     differential oracle).  Strategies without a solver choice ignore \
     this."
  in
  Arg.(value & opt string "kernel" & info [ "solver" ] ~docv:"SOLVER" ~doc)

let with_solver name k =
  match Report.Registry.solver_of_name name with
  | Error m -> `Error (false, m)
  | Ok solver -> k solver

let factory_of_name ~seed ?metrics ?solver name =
  Report.Registry.factory_of_name ~seed ?metrics ?solver name

let instance_of_workload = Report.Registry.instance_of_workload

(* ------------------------------------------------------------------ *)
(* job-runner arguments (shared by exp and sweep) *)

let jobs_arg =
  let doc =
    "Worker domains for the experiment job runner (1 = serial; the \
     default picks a count suited to the machine).  Any value produces \
     byte-identical report output."
  in
  Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N" ~doc)

let cache_dir_arg =
  let doc =
    "Cache job results under $(docv) (content-addressed, created on \
     demand).  Results are always written when set; pair with \
     $(b,--resume) to also read them back."
  in
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let resume_arg =
  let doc =
    "Answer jobs from the $(b,--cache-dir) cache when possible, \
     recomputing only missing or corrupt entries — a killed run picks \
     up where it left off."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let retries_arg =
  let doc = "Extra attempts per failing job before recording the failure." in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"K" ~doc)

let runner_ctx ?metrics ~jobs ~cache_dir ~resume ~retries () =
  Report.Jobs.create ?domains:jobs ?cache_dir ~resume ~retries ?metrics ()

(* Print what the runner accumulated and flush its gauges so a
   [--metrics] dump carries jobs.* alongside the live counters. *)
let finish_runner ctx =
  let failures = Report.Jobs.render_failures ctx in
  if failures <> "" then print_string failures;
  print_endline (Report.Jobs.summary ctx);
  Report.Jobs.finish ctx

(* ------------------------------------------------------------------ *)
(* metrics export (shared by the subcommands) *)

let metrics_fmt_arg =
  let doc =
    "Record per-subsystem metrics (engine rounds, streaming-optimum \
     search effort, network traffic, domain utilisation) and print them \
     after the report in the given format: text, csv or json."
  in
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FMT" ~doc)

let metrics_out_arg =
  let doc = "Write the $(b,--metrics) dump to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE" ~doc)

(* Parse the format, install an ambient registry around [k], export on
   success.  [k] receives the registry so commands can also pass it
   explicitly where the ambient fallback does not reach. *)
let with_metrics fmt out k =
  match fmt with
  | None -> k None
  | Some name ->
    (match Obs.Export.format_of_string name with
     | Error m -> `Error (false, m)
     | Ok fmt ->
       let m = Obs.Metrics.create () in
       Obs.Metrics.set_ambient (Some m);
       Fun.protect
         ~finally:(fun () -> Obs.Metrics.set_ambient None)
         (fun () ->
            match k (Some m) with
            | `Ok () ->
              Obs.Export.output ?path:out fmt (Obs.Metrics.snapshot m);
              (match out with
               | Some path -> Printf.printf "metrics  : wrote %s\n" path
               | None -> ());
              `Ok ()
            | other -> other))

let print_outcome_summary (r : Report.Harness.run) =
  let o = r.outcome in
  Printf.printf "strategy : %s\n" o.strategy_name;
  Printf.printf "instance : %s\n"
    (Format.asprintf "%a" Sched.Instance.pp_summary o.instance);
  Printf.printf "served   : %d / %d (wasted services: %d)\n" o.served
    (Sched.Instance.n_requests o.instance)
    o.wasted;
  Printf.printf "optimum  : %d\n" r.opt;
  Printf.printf "ratio    : %.4f\n" r.ratio

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd =
  let action strategy solver workload n d rounds load seed audit csv phases
      score mfmt mout =
    with_metrics mfmt mout @@ fun metrics ->
    with_solver solver @@ fun solver ->
    with_score score @@ fun score ->
    match factory_of_name ~seed ?metrics ~solver strategy with
    | Error m -> `Error (false, m)
    | Ok factory ->
      (match instance_of_workload ~name:workload ~n ~d ~rounds ~load ~seed with
       | Error m -> `Error (false, m)
       | Ok inst ->
         let r = Report.Harness.run_instance ?metrics inst factory in
         print_outcome_summary r;
         (match score with
          | None -> ()
          | Some sel ->
            let s = Analysis.Slo.of_outcome r.outcome in
            Option.iter (fun m -> Analysis.Slo.record m s) metrics;
            (match sel with
             | Analysis.Slo.All ->
               Printf.printf "%s\n"
                 (Format.asprintf "%a" Analysis.Slo.pp_scores s)
             | Analysis.Slo.One mode ->
               Printf.printf "score    : %s = %s\n"
                 (Analysis.Slo.mode_label mode)
                 (Analysis.Slo.mode_cell mode ~ratio:r.ratio s)));
         if audit then begin
           let a = Analysis.Audit.of_outcome r.outcome in
           Printf.printf "audit    : %s\n"
             (Format.asprintf "%a" Analysis.Audit.pp a)
         end;
         (match phases with
          | Some period when period >= 1 ->
            List.iter
              (fun w ->
                 Printf.printf "window   : %s\n"
                   (Format.asprintf "%a" Analysis.Ledger.pp w))
              (Analysis.Ledger.by_window r.outcome ~period);
            (match Analysis.Ledger.steady_state r.outcome ~period with
             | Some (arrived, served) ->
               Printf.printf
                 "steady   : %d arrived / %d served per window\n" arrived
                 served
             | None -> Printf.printf "steady   : no steady state\n")
          | Some _ | None -> ());
         (match csv with
          | Some path ->
            Report.Export.write_file ~path
              (Report.Export.csv_of_outcome r.outcome);
            Printf.printf "csv      : wrote %s\n" path
          | None -> ());
         `Ok ())
  in
  let audit_arg =
    Arg.(value & flag
         & info [ "audit" ]
             ~doc:"Also print the augmenting-path census against the optimum.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
             ~doc:"Write the per-request outcome as CSV to $(docv).")
  in
  let phases_arg =
    Arg.(value & opt (some int) None
         & info [ "phases" ] ~docv:"PERIOD"
             ~doc:"Print per-window accounting with the given period \
                   (rounds) and the steady state if one exists.")
  in
  let term =
    Term.(ret (const action $ strategy_arg $ solver_arg $ workload_arg
               $ n_arg $ d_arg $ rounds_arg $ load_arg $ seed_arg $ audit_arg
               $ csv_arg $ phases_arg $ score_arg $ metrics_fmt_arg
               $ metrics_out_arg))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one strategy on a workload.")
    term

(* ------------------------------------------------------------------ *)
(* compare *)

let compare_cmd =
  let action workload solver n d rounds load seed score mfmt mout =
    with_metrics mfmt mout @@ fun metrics ->
    with_solver solver @@ fun solver ->
    with_score score @@ fun score ->
    match instance_of_workload ~name:workload ~n ~d ~rounds ~load ~seed with
    | Error m -> `Error (false, m)
    | Ok inst ->
      let opt =
        match metrics with
        | Some m -> Offline.Opt_stream.value ~metrics:m inst
        | None -> Offline.Opt.value inst
      in
      (* --score slo appends the full block, one objective just its
         column; ratio already has a column, so All skips it *)
      let score_modes =
        match score with
        | None -> []
        | Some (Analysis.Slo.One mode) -> [ mode ]
        | Some Analysis.Slo.All ->
          [
            Analysis.Slo.Violation; Analysis.Slo.Throughput; Analysis.Slo.Antt;
            Analysis.Slo.Delay; Analysis.Slo.Machines;
          ]
      in
      let table =
        Prelude.Texttable.create
          ~title:
            (Printf.sprintf "workload %s: %s; optimum %d" workload
               (Format.asprintf "%a" Sched.Instance.pp_summary inst)
               opt)
          ~header:
            ([ "strategy"; "served"; "wasted"; "ratio" ]
             @ List.map Analysis.Slo.mode_label score_modes)
          ()
      in
      List.iter
        (fun name ->
           match factory_of_name ~seed ?metrics ~solver name with
           | Error _ -> ()
           | Ok factory ->
             let o = Sched.Engine.run ?metrics inst factory in
             let ratio = Report.Harness.ratio_of ~opt ~served:o.served in
             let score_cells =
               match score_modes with
               | [] -> []
               | modes ->
                 let s = Analysis.Slo.of_outcome o in
                 List.map
                   (fun mode -> Analysis.Slo.mode_cell mode ~ratio s)
                   modes
             in
             Prelude.Texttable.add_row table
               ([
                  name;
                  string_of_int o.served;
                  string_of_int o.wasted;
                  Prelude.Texttable.cell_ratio ratio;
                ]
                @ score_cells))
        strategy_names;
      Prelude.Texttable.print table;
      `Ok ()
  in
  let term =
    Term.(ret (const action $ workload_arg $ solver_arg $ n_arg $ d_arg
               $ rounds_arg $ load_arg $ seed_arg $ score_arg
               $ metrics_fmt_arg $ metrics_out_arg))
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run every strategy on one workload.")
    term

(* ------------------------------------------------------------------ *)
(* exp *)

let exp_cmd =
  let action id quick jobs cache_dir resume retries mfmt mout =
    with_metrics mfmt mout @@ fun metrics ->
    (* the experiments enumerate their cases through the job runner;
       everything else (Engine.run, Net.create, the streaming optimum)
       still picks the registry up ambiently *)
    let ctx = runner_ctx ?metrics ~jobs ~cache_dir ~resume ~retries () in
    let catalog = Report.Experiments.catalog @ Report.Zoo.catalog in
    let matches =
      if id = "all" then catalog
      else
        List.filter
          (fun (eid, _) ->
             String.length eid >= String.length id
             && String.sub eid 0 (String.length id) = id)
          catalog
    in
    if matches = [] then
      `Error
        ( false,
          Printf.sprintf "no experiment matches %S; known ids: %s" id
            (String.concat ", " (List.map fst catalog)) )
    else begin
      let failures = ref 0 in
      List.iter
        (fun (_, f) ->
           let e = f ~ctx ~quick in
           print_string (Report.Experiments.render e);
           List.iter
             (fun (_, ok) -> if not ok then incr failures)
             e.Report.Experiments.checks)
        matches;
      finish_runner ctx;
      if !failures = 0 then `Ok ()
      else `Error (false, Printf.sprintf "%d failed checks" !failures)
    end
  in
  let id_arg =
    Arg.(value & pos 0 string "all"
         & info [] ~docv:"ID" ~doc:"Experiment id prefix, or 'all'.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Small parameters.")
  in
  let term =
    Term.(ret (const action $ id_arg $ quick_arg $ jobs_arg $ cache_dir_arg
               $ resume_arg $ retries_arg $ metrics_fmt_arg
               $ metrics_out_arg))
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Run reproduction experiments (DESIGN.md §3).")
    term

(* ------------------------------------------------------------------ *)
(* table1 *)

let table1_cmd =
  let action d =
    if d < 2 then `Error (false, "d must be >= 2")
    else begin
      let table =
        Prelude.Texttable.create
          ~title:(Printf.sprintf "Paper Table 1 bounds at d = %d" d)
          ~header:[ "strategy"; "lower bound"; "upper bound" ] ()
      in
      List.iter
        (fun (name, lb, ub) ->
           let cell = function
             | Some r -> Report.Harness.rat_cell r
             | None -> "-"
           in
           Prelude.Texttable.add_row table [ name; cell lb; cell ub ])
        (Analysis.Bounds.table1 ~d);
      Prelude.Texttable.print table;
      `Ok ()
    end
  in
  let term = Term.(ret (const action $ d_arg)) in
  Cmd.v
    (Cmd.info "table1" ~doc:"Print the paper's Table 1 bounds for a given d.")
    term

(* ------------------------------------------------------------------ *)
(* sweep *)

let sweep_cmd =
  let action workload n d rounds seed score jobs cache_dir resume retries
      mfmt mout =
    with_metrics mfmt mout @@ fun metrics ->
    with_score score @@ fun score ->
    (* a sweep cell is one table entry: pick a single objective *)
    let mode =
      match score with
      | None | Some (Analysis.Slo.One Analysis.Slo.Ratio) -> Analysis.Slo.Ratio
      | Some (Analysis.Slo.One m) -> m
      | Some Analysis.Slo.All -> Analysis.Slo.Ratio
    in
    match score with
    | Some Analysis.Slo.All ->
      `Error
        ( false,
          "--score slo does not fit a sweep cell; pick one objective \
           (ratio, violation, throughput, antt, delay, machines)" )
    | _ ->
    let ctx = runner_ctx ?metrics ~jobs ~cache_dir ~resume ~retries () in
    let loads = [ 0.5; 0.7; 0.9; 1.0; 1.1; 1.3; 1.5; 2.0 ] in
    let strategies =
      [ "fix"; "balance"; "edf"; "local_eager"; "greedy_2choice" ]
    in
    let insts =
      List.map
        (fun load ->
           ( load,
             instance_of_workload ~name:workload ~n ~d ~rounds ~load ~seed ))
        loads
    in
    match
      List.find_map (function _, Error m -> Some m | _ -> None) insts
    with
    | Some m -> `Error (false, m)
    | None ->
      let insts =
        List.map (fun (load, r) -> (load, Result.get_ok r)) insts
      in
      (* one job per table cell (plus the optimum per load): each is
         independently parallelised, cached and fault-isolated *)
      let shared =
        [
          ("workload", workload);
          ("n", string_of_int n);
          ("d", string_of_int d);
          ("rounds", string_of_int rounds);
          ("seed", string_of_int seed);
        ]
      in
      let batch =
        List.concat_map
          (fun (load, inst) ->
             let lp = [ ("load", string_of_float load) ] in
             Report.Jobs.job
               ~name:(Printf.sprintf "opt/load=%.2f" load)
               ~params:lp
               (fun ~attempt:_ -> Report.Jobs.Int (Offline.Opt.value inst))
             :: List.map
               (fun sname ->
                  Report.Jobs.job
                    ~name:(Printf.sprintf "%s/load=%.2f" sname load)
                    ~params:(("strategy", sname) :: lp)
                    (fun ~attempt:_ ->
                       match factory_of_name ~seed ?metrics sname with
                       | Error m -> failwith m
                       | Ok factory ->
                         let o = Sched.Engine.run ?metrics inst factory in
                         (* the cached value is the whole score record,
                            so any --score mode reads the same cache *)
                         let s = Analysis.Slo.of_outcome o in
                         Report.Jobs.List
                           [
                             Report.Jobs.Int s.Analysis.Slo.submitted;
                             Report.Jobs.Int s.served;
                             Report.Jobs.Int s.expired;
                             Report.Jobs.Int s.rounds;
                             Report.Jobs.Float s.violation_rate;
                             Report.Jobs.Float s.throughput;
                             Report.Jobs.Float s.antt;
                             Report.Jobs.Float s.max_delay_factor;
                             Report.Jobs.Int s.machines_needed;
                           ]))
               strategies)
          insts
      in
      let outcomes = Report.Jobs.map ctx ~family:"sweep" ~shared batch in
      let table =
        Prelude.Texttable.create
          ~title:
            (Printf.sprintf
               "%s vs load (workload %s, n=%d, d=%d, %d rounds)"
               (match mode with
                | Analysis.Slo.Ratio -> "competitive ratio"
                | m -> "SLO score " ^ Analysis.Slo.mode_label m)
               workload n d rounds)
          ~header:("load" :: "optimum" :: strategies)
          ()
      in
      let scores_of_cell o =
        let iv i = Report.Jobs.int_value (Report.Jobs.nth o i) in
        let fv i = Report.Jobs.float_value (Report.Jobs.nth o i) in
        {
          Analysis.Slo.submitted = iv 0;
          served = iv 1;
          expired = iv 2;
          rounds = iv 3;
          violation_rate = fv 4;
          throughput = fv 5;
          antt = fv 6;
          max_delay_factor = fv 7;
          machines_needed = iv 8;
        }
      in
      let per_load = 1 + List.length strategies in
      List.iteri
        (fun li (load, _) ->
           match List.filteri (fun i _ -> i / per_load = li) outcomes with
           | opt_o :: cell_os ->
             let opt = Report.Jobs.int_value opt_o in
             let cells =
               List.map
                 (fun o ->
                    Report.Jobs.cell o (fun _ ->
                        let s = scores_of_cell o in
                        let ratio =
                          Report.Harness.ratio_of ~opt
                            ~served:s.Analysis.Slo.served
                        in
                        match mode with
                        | Analysis.Slo.Ratio ->
                          Prelude.Texttable.cell_ratio ratio
                        | m -> Analysis.Slo.mode_cell m ~ratio s))
                 cell_os
             in
             Prelude.Texttable.add_row table
               (Printf.sprintf "%.1f" load
                :: Report.Jobs.cell opt_o (function
                  | Report.Jobs.Int v -> string_of_int v
                  | _ -> "?")
                :: cells)
           | [] -> ())
        insts;
      Prelude.Texttable.print table;
      finish_runner ctx;
      if Report.Jobs.failures ctx = [] then `Ok ()
      else `Error (false, "sweep completed with failed jobs")
  in
  let term =
    Term.(ret (const action $ workload_arg $ n_arg $ d_arg $ rounds_arg
               $ seed_arg $ score_arg $ jobs_arg $ cache_dir_arg $ resume_arg
               $ retries_arg $ metrics_fmt_arg $ metrics_out_arg))
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Competitive ratio (or any --score objective) of representative \
          strategies across loads.")
    term

(* ------------------------------------------------------------------ *)
(* zoo *)

let zoo_cmd =
  let action quick jobs cache_dir resume retries mfmt mout =
    with_metrics mfmt mout @@ fun metrics ->
    let ctx = runner_ctx ?metrics ~jobs ~cache_dir ~resume ~retries () in
    let e = Report.Zoo.summary ~ctx ~quick in
    print_string (Report.Experiments.render e);
    finish_runner ctx;
    let failed =
      List.length (List.filter (fun (_, ok) -> not ok) e.Report.Experiments.checks)
    in
    if failed = 0 then `Ok ()
    else `Error (false, Printf.sprintf "%d failed zoo checks" failed)
  in
  let quick_arg =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"Small parameters (the golden-snapshot tier).")
  in
  let term =
    Term.(ret (const action $ quick_arg $ jobs_arg $ cache_dir_arg
               $ resume_arg $ retries_arg $ metrics_fmt_arg
               $ metrics_out_arg))
  in
  Cmd.v
    (Cmd.info "zoo"
       ~doc:
         "Score every strategy on the workload zoo (hotspot, diurnal, vod, \
          overload, mix) with SLO objectives and anytime ratio.")
    term

(* ------------------------------------------------------------------ *)
(* trace *)

let trace_cmd =
  let action strategy solver workload n d rounds load seed grid mfmt mout =
    with_metrics mfmt mout @@ fun metrics ->
    with_solver solver @@ fun solver ->
    match factory_of_name ~seed ?metrics ~solver strategy with
    | Error m -> `Error (false, m)
    | Ok factory ->
      (match instance_of_workload ~name:workload ~n ~d ~rounds ~load ~seed with
       | Error m -> `Error (false, m)
       | Ok inst ->
         let o = Sched.Engine.run ?metrics inst factory in
         if grid then begin
           print_string (Report.Gantt.render_with_failures o);
           print_newline ()
         end;
         let by_round = Hashtbl.create 64 in
         Array.iteri
           (fun id sv ->
              match sv with
              | None -> ()
              | Some (res, round) ->
                Hashtbl.replace by_round round
                  ((id, res)
                   :: Option.value ~default:[]
                        (Hashtbl.find_opt by_round round)))
           o.served_at;
         for round = 0 to inst.Sched.Instance.horizon - 1 do
           let arrivals = Sched.Instance.arrivals_at inst round in
           let served =
             List.sort compare
               (Option.value ~default:[] (Hashtbl.find_opt by_round round))
           in
           Printf.printf "round %3d | arrivals:%3d | served: %s\n" round
             (Array.length arrivals)
             (String.concat " "
                (List.map
                   (fun (id, res) -> Printf.sprintf "r%d@S%d" id res)
                   served))
         done;
         Printf.printf "%s\n"
           (Format.asprintf "%a" Sched.Outcome.pp_summary o);
         `Ok ())
  in
  let grid_arg =
    Arg.(value & flag
         & info [ "grid" ]
             ~doc:"Also draw the schedule as an ASCII occupancy chart.")
  in
  let term =
    Term.(ret (const action $ strategy_arg $ solver_arg $ workload_arg
               $ n_arg $ d_arg $ rounds_arg $ load_arg $ seed_arg $ grid_arg
               $ metrics_fmt_arg $ metrics_out_arg))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Round-by-round service trace of a strategy on a workload.")
    term

(* ------------------------------------------------------------------ *)
(* serve *)

let addr_conv ~what =
  let parse s =
    match Serve.Server.addr_of_string s with
    | Ok a -> Ok a
    | Error m -> Error (`Msg m)
  in
  let print ppf a =
    Format.pp_print_string ppf (Serve.Server.addr_to_string a)
  in
  Arg.conv ~docv:what (parse, print)

let tick_ms_arg =
  let doc =
    "Milliseconds per scheduling round (interval ticker).  Ignored \
     when $(b,--manual) is set."
  in
  Arg.(value & opt float 50.0 & info [ "tick-ms" ] ~docv:"MS" ~doc)

let manual_arg =
  let doc =
    "Logical time: rounds advance only on wire $(b,tick) messages \
     (deterministic replay mode).  Server and load generator must \
     agree on this flag."
  in
  Arg.(value & flag & info [ "manual" ] ~doc)

let serve_cmd =
  let action listen shards domains n d strategy solver seed tick_ms manual
      queue_cap max_batch outbox_cap read_timeout mfmt mout =
    with_metrics mfmt mout @@ fun metrics ->
    with_solver solver @@ fun solver ->
    (* validate the strategy name once up front; per-shard factories
       then reseed so randomised strategies don't share one coin
       stream across domains *)
    match factory_of_name ~seed ~solver strategy with
    | Error m -> `Error (false, m)
    | Ok _ ->
      let per_shard ~shard ~metrics:_ =
        match factory_of_name ~seed:(seed + shard) ~solver strategy with
        | Ok f -> f
        | Error m -> failwith m
      in
      let cfg =
        {
          Serve.Server.addr = listen;
          n_resources = n;
          d;
          shards;
          domains;
          strategy = per_shard;
          tick = (if manual then `Manual else `Every (tick_ms /. 1000.0));
          queue_capacity = queue_cap;
          max_batch;
          outbox_capacity = outbox_cap;
          read_timeout;
          name = "reqsched";
        }
      in
      (match Serve.Server.start ?metrics cfg with
       | Error m -> `Error (false, m)
       | Ok srv ->
         let drain _ = Serve.Server.drain srv in
         Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
         Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
         Printf.printf
           "serving on %s: n=%d d=%d shards=%d domains=%d strategy=%s \
            tick=%s\n%!"
           (Serve.Server.addr_to_string listen)
           n d
           (Serve.Server.n_shards srv)
           (Serve.Server.n_domains srv)
           strategy
           (if manual then "manual" else Printf.sprintf "%.0fms" tick_ms);
         (* the signal handler only flips an atomic; poll for completion
            from the main thread so EINTR cannot wedge a join *)
         let rec await () =
           if not (Serve.Server.finished srv) then begin
             (try Unix.sleepf 0.1
              with Unix.Unix_error (Unix.EINTR, _, _) -> ());
             await ()
           end
         in
         await ();
         let snap = Serve.Server.wait srv in
         let count name =
           match List.assoc_opt name snap with
           | Some (Obs.Metrics.Counter v) -> v
           | Some _ | None -> 0
         in
         Printf.printf
           "drained: served=%d expired=%d rejected=%d client_errors=%d\n"
           (count "serve.served") (count "serve.expired")
           (count "serve.rejected.overload"
            + count "serve.rejected.draining"
            + count "serve.rejected.invalid")
           (count "serve.client_errors");
         `Ok ())
  in
  let listen_arg =
    let doc = "Listen address: tcp:HOST:PORT or unix:PATH." in
    Arg.(value
         & opt (addr_conv ~what:"ADDR") (Serve.Server.Tcp ("127.0.0.1", 7477))
         & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let shards_arg =
    let doc =
      "Scheduling shards; the resource space is split into this many \
       contiguous slices (clamped to [1, n])."
    in
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"K" ~doc)
  in
  let domains_arg =
    let doc =
      "Worker domains stepping the shards, each owning a contiguous \
       slice of them (clamped to [1, shards]).  0 means one domain \
       per shard.  With $(b,--manual) ticks, scheduling decisions are \
       byte-identical at any domain count."
    in
    Arg.(value & opt int 0 & info [ "domains" ] ~docv:"W" ~doc)
  in
  let queue_cap_arg =
    let doc =
      "Per-shard admission queue bound; a full queue rejects with \
       $(b,overload) instead of buffering without limit."
    in
    Arg.(value & opt int 1024 & info [ "queue-cap" ] ~docv:"N" ~doc)
  in
  let max_batch_arg =
    let doc =
      "Longest $(b,batch) wire line accepted; longer batches are \
       rejected as invalid."
    in
    Arg.(value & opt int 512 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let outbox_cap_arg =
    let doc =
      "Per-shard reply ring bound; a full ring stalls that shard with \
       backpressure (counted as serve.outbox_stalls), never drops a \
       reply."
    in
    Arg.(value & opt int 4096 & info [ "outbox-cap" ] ~docv:"N" ~doc)
  in
  let read_timeout_arg =
    let doc = "Idle-connection timeout in seconds (0 disables)." in
    Arg.(value & opt float 30.0 & info [ "read-timeout" ] ~docv:"SECS" ~doc)
  in
  let term =
    Term.(ret (const action $ listen_arg $ shards_arg $ domains_arg $ n_arg
               $ d_arg $ strategy_arg $ solver_arg $ seed_arg $ tick_ms_arg
               $ manual_arg $ queue_cap_arg $ max_batch_arg $ outbox_cap_arg
               $ read_timeout_arg $ metrics_fmt_arg $ metrics_out_arg))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the live scheduling server (SIGINT/SIGTERM drain \
          gracefully).")
    term

(* ------------------------------------------------------------------ *)
(* cluster *)

let cluster_kind_of_name = function
  | "local_fix" -> Ok Cluster.Session.Local_fix
  | "local_eager" -> Ok (Cluster.Session.Local_eager { compact = false })
  | "local_eager_compact" -> Ok (Cluster.Session.Local_eager { compact = true })
  | "proxy_global" | "proxy-global" -> Ok Cluster.Session.Proxy_global
  | other ->
    Error
      (Printf.sprintf
         "unknown cluster strategy %S (local_fix, local_eager, \
          local_eager_compact, proxy-global)"
         other)

let event_conv =
  let parse s =
    match String.index_opt s '@' with
    | Some i ->
      (try
         Ok
           ( int_of_string (String.sub s 0 i),
             int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )
       with Failure _ ->
         Error (`Msg (Printf.sprintf "bad event %S, expected NODE@ROUND" s)))
    | None ->
      Error (`Msg (Printf.sprintf "bad event %S, expected NODE@ROUND" s))
  in
  let print ppf (node, round) = Format.fprintf ppf "%d@%d" node round in
  Arg.conv ~docv:"NODE@ROUND" (parse, print)

let cluster_cmd =
  let action nodes strategy workload n d rounds load seed kills rejoins
      fail_after capacity decisions_out listen tick_ms manual mfmt mout =
    with_metrics mfmt mout @@ fun metrics ->
    match cluster_kind_of_name strategy with
    | Error m -> `Error (false, m)
    | Ok kind ->
      let stats_block (s : Cluster.Session.stats) =
        Printf.printf
          "cluster  : nodes=%d strategy=%s fail_after=%d\n"
          nodes (Cluster.Session.kind_name kind) fail_after;
        Printf.printf
          "rounds   : scheduling=%d comm_total=%d comm_max=%d\n"
          s.scheduling_rounds s.comm_rounds_total s.comm_rounds_max;
        Printf.printf
          "traffic  : msgs=%d bounced=%d dropped_dead=%d\n"
          s.messages s.bounced s.dropped_dead;
        Printf.printf
          "requests : admitted=%d straddled=%d served=%d expired=%d \
           readmitted=%d\n"
          s.requests s.straddled s.served s.expired s.readmitted;
        Printf.printf
          "failover : failovers=%d handoffs=%d handoff_slots=%d \
           serve_conflicts=%d\n"
          s.failovers s.handoffs s.handoff_slots s.serve_conflicts
      in
      (match listen with
       | Some addr ->
         if kills <> [] || rejoins <> [] then
           `Error (false, "--kill/--rejoin are for local runs, not --listen")
         else begin
           (* serve mode: one shard, the router tier fans out inside it *)
           let cfg =
             {
               Serve.Server.addr;
               n_resources = n;
               d;
               shards = 1;
               domains = 0;
               strategy =
                 (fun ~shard:_ ~metrics ->
                   Cluster.Session.factory ~metrics ?capacity ~fail_after
                     ~strategy:kind ~nodes ());
               tick = (if manual then `Manual else `Every (tick_ms /. 1000.0));
               queue_capacity = 1024;
               max_batch = 512;
               outbox_capacity = 4096;
               read_timeout = 30.0;
               name = "reqsched-cluster";
             }
           in
           match Serve.Server.start ?metrics cfg with
           | Error m -> `Error (false, m)
           | Ok srv ->
             let drain _ = Serve.Server.drain srv in
             Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
             Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
             Printf.printf
               "cluster serving on %s: n=%d d=%d nodes=%d strategy=%s \
                tick=%s\n%!"
               (Serve.Server.addr_to_string addr)
               n d nodes
               (Cluster.Session.kind_name kind)
               (if manual then "manual" else Printf.sprintf "%.0fms" tick_ms);
             let rec await () =
               if not (Serve.Server.finished srv) then begin
                 (try Unix.sleepf 0.1
                  with Unix.Unix_error (Unix.EINTR, _, _) -> ());
                 await ()
               end
             in
             await ();
             let snap = Serve.Server.wait srv in
             let count name =
               match List.assoc_opt name snap with
               | Some (Obs.Metrics.Counter v) -> v
               | Some _ | None -> 0
             in
             Printf.printf
               "drained: served=%d expired=%d comm_rounds=%d bounced=%d\n"
               (count "cluster.served") (count "cluster.expired")
               (count "cluster.comm_rounds") (count "cluster.bounced");
             `Ok ()
         end
       | None ->
         (* deterministic local run under the engine's full validation *)
         let thm37 = workload = "thm37" in
         let instance =
           if thm37 then
             let sc, _ =
               Adversary.Thm37.make ~d ~intervals:(max 1 (rounds / max 1 d))
             in
             Ok sc.Adversary.Scenario.instance
           else instance_of_workload ~name:workload ~n ~d ~rounds ~load ~seed
         in
         (match instance with
          | Error m -> `Error (false, m)
          | Ok inst ->
            let priority =
              if thm37 then
                Some
                  (snd
                     (Adversary.Thm37.make ~d
                        ~intervals:(max 1 (rounds / max 1 d))))
              else None
            in
            let session = ref None in
            let base =
              Cluster.Session.factory ?metrics ?capacity ?priority ~fail_after
                ~on_create:(fun s -> session := Some s)
                ~strategy:kind ~nodes ()
            in
            let factory ~n ~d =
              let inner = base ~n ~d in
              {
                inner with
                Sched.Strategy.step =
                  (fun ~round ~arrivals ->
                    (match !session with
                     | Some s ->
                       List.iter
                         (fun (k, at) ->
                            if at = round then Cluster.Session.kill s k)
                         kills;
                       List.iter
                         (fun (k, at) ->
                            if at = round then Cluster.Session.rejoin s k)
                         rejoins
                     | None -> ());
                    inner.Sched.Strategy.step ~round ~arrivals);
              }
            in
            (try
               let o = Sched.Engine.run ?metrics inst factory in
               let opt = Offline.Opt.value inst in
               Printf.printf "instance : %s\n"
                 (Format.asprintf "%a" Sched.Instance.pp_summary inst);
               Printf.printf "served   : %d / %d\n" o.Sched.Outcome.served
                 (Sched.Instance.n_requests inst);
               Printf.printf "optimum  : %d\n" opt;
               if o.Sched.Outcome.served > 0 then
                 Printf.printf "ratio    : %.4f\n"
                   (float_of_int opt /. float_of_int o.Sched.Outcome.served);
               (match !session with
                | Some s -> stats_block (Cluster.Session.stats s)
                | None -> ());
               (match decisions_out with
                | None -> ()
                | Some path ->
                  let decisions = ref [] in
                  Array.iteri
                    (fun id sv ->
                       match sv with
                       | Some (res, round) ->
                         decisions := (round, id, res) :: !decisions
                       | None -> ())
                    o.Sched.Outcome.served_at;
                  let decisions = List.sort compare !decisions in
                  let oc = open_out path in
                  List.iter
                    (fun (round, id, res) ->
                       output_string oc
                         (Printf.sprintf "t%d sched@%d S%d\n" round id res))
                    decisions;
                  close_out oc;
                  Printf.printf "decisions: wrote %s (%d lines)\n" path
                    (List.length decisions));
               `Ok ()
             with Invalid_argument m -> `Error (false, m))))
  in
  let nodes_arg =
    let doc = "Shard nodes in the cluster (resources consistent-hashed)." in
    Arg.(value & opt int 3 & info [ "nodes" ] ~docv:"K" ~doc)
  in
  let cluster_strategy_arg =
    let doc =
      "Cluster strategy: local_fix (Thm 3.7: 2 comm rounds, 2-competitive), \
       local_eager (Thm 3.8: 9 rounds), local_eager_compact (8 rounds at \
       mailbox capacity 2d-2), or proxy-global (router-probe baseline)."
    in
    Arg.(value & opt string "local_fix"
         & info [ "s"; "strategy" ] ~docv:"S" ~doc)
  in
  let kill_arg =
    let doc =
      "Crash node $(i,NODE) just before round $(i,ROUND) (repeatable; \
       local runs only)."
    in
    Arg.(value & opt_all event_conv [] & info [ "kill" ] ~doc)
  in
  let rejoin_arg =
    let doc =
      "Restart node $(i,NODE) just before round $(i,ROUND) (repeatable; \
       local runs only)."
    in
    Arg.(value & opt_all event_conv [] & info [ "rejoin" ] ~doc)
  in
  let fail_after_arg =
    let doc = "Consecutive missed pongs before a node is declared dead." in
    Arg.(value & opt int 2 & info [ "fail-after" ] ~docv:"K" ~doc)
  in
  let capacity_arg =
    let doc =
      "Per-resource mailbox capacity (default: the strategy's paper \
       value — d, or 2d-2 for local_eager_compact)."
    in
    Arg.(value & opt (some int) None & info [ "capacity" ] ~docv:"C" ~doc)
  in
  let decisions_arg =
    let doc =
      "Write the serve decisions (one $(b,t<round> sched@<id> S<res>) \
       line each) to $(docv) — byte-identical across runs and across \
       $(b,--nodes) layouts."
    in
    Arg.(value & opt (some string) None
         & info [ "decisions" ] ~docv:"FILE" ~doc)
  in
  let listen_arg =
    let doc =
      "Serve the cluster live on tcp:HOST:PORT or unix:PATH instead of \
       running a local workload."
    in
    Arg.(value & opt (some (addr_conv ~what:"ADDR")) None
         & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let term =
    Term.(ret (const action $ nodes_arg $ cluster_strategy_arg $ workload_arg
               $ n_arg $ d_arg $ rounds_arg $ load_arg $ seed_arg $ kill_arg
               $ rejoin_arg $ fail_after_arg $ capacity_arg $ decisions_arg
               $ listen_arg $ tick_ms_arg $ manual_arg $ metrics_fmt_arg
               $ metrics_out_arg))
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Run the paper's local strategies live across a multi-node \
          router tier (consistent-hash placement, capacity-d mailboxes, \
          failure/rejoin), or serve it with --listen.")
    term

(* ------------------------------------------------------------------ *)
(* load *)

let load_cmd =
  let action connect mode workload n d rounds load seed users total tick_ms
      manual batch trace_in save_trace decisions_out mfmt mout =
    with_metrics mfmt mout @@ fun _metrics ->
    let inst =
      match trace_in with
      | Some path -> Sched.Codec.load ~path
      | None -> instance_of_workload ~name:workload ~n ~d ~rounds ~load ~seed
    in
    match inst with
    | Error m -> `Error (false, m)
    | Ok inst ->
      (match save_trace with
       | Some path ->
         Sched.Codec.save ~path inst;
         Printf.printf "trace    : wrote %s\n" path
       | None -> ());
      let result =
        match mode with
        | "open" ->
          Serve.Client.open_loop ~addr:connect ~inst
            ~tick:(if manual then `Manual else `Every (tick_ms /. 1000.0))
            ~batch ()
        | "closed" ->
          let total =
            if total > 0 then total else Sched.Instance.n_requests inst
          in
          Serve.Client.closed_loop ~addr:connect ~inst ~users ~total ~batch
            ()
        | other ->
          Error (Printf.sprintf "unknown mode %S (expected open or closed)"
                   other)
      in
      (match result with
       | Error m -> `Error (false, m)
       | Ok r ->
         let pct k =
           if r.Serve.Client.submitted = 0 then 0.0
           else 100.0 *. float_of_int k /. float_of_int r.submitted
         in
         Printf.printf "submitted : %d\n" r.Serve.Client.submitted;
         Printf.printf "scheduled : %d (%.1f%%)\n" r.scheduled
           (pct r.scheduled);
         Printf.printf "rejected  : %d (%.1f%%)\n" r.rejected
           (pct r.rejected);
         Printf.printf "expired   : %d (%.1f%%)\n" r.expired (pct r.expired);
         Printf.printf "duration  : %.3fs (%.0f req/s)\n" r.duration
           (if r.duration > 0.0 then
              float_of_int r.submitted /. r.duration
            else 0.0);
         if Array.length r.rtt_samples > 0 then begin
           let q p = 1e3 *. Prelude.Stats.quantile r.rtt_samples p in
           Printf.printf
             "latency   : p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n"
             (q 0.5) (q 0.9) (q 0.99)
             (1e3 *. Prelude.Stats.max r.rtt)
         end;
         (match decisions_out with
          | Some path ->
            let oc = open_out path in
            output_string oc (Serve.Client.render_decisions r);
            close_out oc;
            Printf.printf "decisions : wrote %s\n" path
          | None -> ());
         `Ok ())
  in
  let connect_arg =
    let doc = "Server address: tcp:HOST:PORT or unix:PATH." in
    Arg.(value
         & opt (addr_conv ~what:"ADDR") (Serve.Server.Tcp ("127.0.0.1", 7477))
         & info [ "connect" ] ~docv:"ADDR" ~doc)
  in
  let mode_arg =
    let doc =
      "$(b,open): replay the workload's arrival schedule round by round \
       (lock-step when $(b,--manual)).  $(b,closed): keep $(b,--users) \
       requests in flight until $(b,--total) have resolved."
    in
    Arg.(value & opt string "open" & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let users_arg =
    let doc = "Closed-loop concurrency (outstanding requests)." in
    Arg.(value & opt int 16 & info [ "users" ] ~docv:"K" ~doc)
  in
  let total_arg =
    let doc =
      "Closed-loop request budget (0 = one pass over the workload)."
    in
    Arg.(value & opt int 0 & info [ "total" ] ~docv:"N" ~doc)
  in
  let batch_arg =
    let doc =
      "Submission batch size: group up to $(docv) requests per wire \
       $(b,batch) line (1 = one $(b,req) line per request).  Decisions \
       are identical across batch sizes in $(b,--manual) mode."
    in
    Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let trace_arg =
    let doc =
      "Replay the exact instance from $(docv) (written by \
       $(b,--save-trace)) instead of generating a workload."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let save_trace_arg =
    let doc = "Save the generated instance to $(docv) before running." in
    Arg.(value & opt (some string) None
         & info [ "save-trace" ] ~docv:"FILE" ~doc)
  in
  let decisions_arg =
    let doc =
      "Write the per-tag decision log (sorted, byte-comparable across \
       replays) to $(docv)."
    in
    Arg.(value & opt (some string) None
         & info [ "decisions" ] ~docv:"FILE" ~doc)
  in
  let term =
    Term.(ret (const action $ connect_arg $ mode_arg $ workload_arg $ n_arg
               $ d_arg $ rounds_arg $ load_arg $ seed_arg $ users_arg
               $ total_arg $ tick_ms_arg $ manual_arg $ batch_arg $ trace_arg
               $ save_trace_arg $ decisions_arg $ metrics_fmt_arg
               $ metrics_out_arg))
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Generate load against a running reqsched server.")
    term

(* ------------------------------------------------------------------ *)
(* search *)

let search_cmd =
  let module Sx = Search.Exhaustive in
  let module Cert = Search.Certificate in
  let action strategy budget n d per_round seed evals restarts phases emit
      golden jobs cache_dir resume retries mfmt mout =
    with_metrics mfmt mout @@ fun metrics ->
    let strategies =
      if strategy = "all" then Ok Search.Game.strategies
      else
        match Search.Game.strategy_of_name strategy with
        | Ok s -> Ok [ s ]
        | Error e -> Error e
    in
    let tier =
      match budget with
      | "exhaustive" -> Ok None
      | "guided" -> Ok (Some `Guided)
      | s ->
        (match int_of_string_opt s with
         | Some b when b >= 1 -> Ok (Some (`Budget b))
         | _ ->
           Error
             (Printf.sprintf
                "bad --budget %S (expected exhaustive, guided, or a request \
                 count)" s))
    in
    match strategies, tier with
    | Error m, _ | _, Error m -> `Error (false, m)
    | Ok strategies, Ok tier ->
      let problems = ref 0 in
      let emit_cert slug cert =
        match emit with
        | None -> ()
        | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let path =
            Filename.concat dir (Printf.sprintf "search-%s.cert" slug)
          in
          Cert.save ~path cert;
          Printf.printf "emit     : %s\n" path
      in
      (* parse + replay a certificate rendered inside a job; the claims
         printed above it are only trusted because this passes *)
      let recheck = function
        | "" -> "none"
        | s ->
          (match Cert.parse s with
           | Error e ->
             incr problems;
             "PARSE FAILED: " ^ e
           | Ok c ->
             (match Cert.check ?metrics c with
              | Ok () -> "ok"
              | Error e ->
                incr problems;
                "FAILED: " ^ e))
      in
      (match tier with
       | Some `Guided ->
         let d = Option.value d ~default:3 in
         let ctx = runner_ctx ?metrics ~jobs ~cache_dir ~resume ~retries () in
         Printf.printf
           "search   : tier=guided n=%d d=%d seed=%d restarts=%d evals=%d \
            phases=%d\n"
           n d seed restarts evals phases;
         List.iter
           (fun (strat : Search.Game.strategy) ->
              let cfg =
                Search.Attacker.config ~seed ~restarts ~evals ~phases ~n ~d ()
              in
              let r = Search.Attacker.run ?metrics ~ctx ~strategy:strat cfg in
              let cert = r.Search.Attacker.certificate in
              let rendered = Cert.render cert in
              Printf.printf
                "%s d=%d: guided best per-phase rate %s; certified instance \
                 opt %d / alg %d (ratio %s) instances=%d evals=%d \
                 disagreements=%d cert=%s\n"
                strat.Search.Game.name d
                (Prelude.Rat.to_string r.Search.Attacker.best_rate)
                cert.Cert.opt cert.Cert.alg
                (Prelude.Rat.to_string (Cert.ratio cert))
                r.Search.Attacker.instances r.Search.Attacker.evals
                (List.length r.Search.Attacker.disagreements)
                (recheck rendered);
              if r.Search.Attacker.disagreements <> [] then begin
                problems := !problems + List.length r.Search.Attacker.disagreements;
                List.iteri
                  (fun i c ->
                     emit_cert
                       (Printf.sprintf "%s-n%d-d%d-disagreement-%d"
                          strat.Search.Game.key n d i)
                       c)
                  r.Search.Attacker.disagreements
              end;
              emit_cert
                (Printf.sprintf "%s-n%d-d%d-guided" strat.Search.Game.key n d)
                cert)
           strategies;
         finish_runner ctx
       | None | Some (`Budget _) ->
         let budget = match tier with Some (`Budget b) -> Some b | _ -> None in
         let ds = match d with Some d -> [ d ] | None -> [ 1; 2 ] in
         if golden then print_string (Sx.golden_table ?budget ~n ~ds ())
         else begin
           let ctx =
             runner_ctx ?metrics ~jobs ~cache_dir ~resume ~retries ()
           in
           Printf.printf
             "search   : tier=exhaustive n=%d ds=%s budget=%d per-round=%d \
              strategies=%s\n"
             n
             (String.concat "," (List.map string_of_int ds))
             (Option.value budget ~default:4)
             per_round
             (String.concat ","
                (List.map (fun (s : Search.Game.strategy) -> s.Search.Game.name)
                   strategies));
           let cases =
             List.concat_map
               (fun d ->
                  List.map (fun (s : Search.Game.strategy) -> (d, s))
                    strategies)
               ds
           in
           let job_of (d, (strat : Search.Game.strategy)) =
             Report.Jobs.job
               ~name:(Printf.sprintf "%s-d%d" strat.Search.Game.key d)
               ~params:
                 [ ("strategy", strat.Search.Game.name);
                   ("n", string_of_int n); ("d", string_of_int d);
                   ("budget", string_of_int (Option.value budget ~default:4));
                   ("per_round", string_of_int per_round) ]
               (fun ~attempt:_ ->
                  let cfg = Sx.config ?budget ~per_round ~n ~d () in
                  let r = Sx.run ~strategy:strat cfg in
                  let best =
                    match r.Sx.best with
                    | Some f ->
                      Report.Jobs.List
                        [ Report.Jobs.Rat f.Sx.ratio;
                          Report.Jobs.Int f.Sx.opt;
                          Report.Jobs.Int f.Sx.alg ]
                    | None -> Report.Jobs.List []
                  in
                  Report.Jobs.List
                    [ best;
                      Report.Jobs.Str
                        (match Sx.certificate r with
                         | Some c -> Cert.render c
                         | None -> "");
                      Report.Jobs.Int r.Sx.nodes;
                      Report.Jobs.Int r.Sx.transpositions;
                      Report.Jobs.Int (List.length r.Sx.disagreements) ])
           in
           let outcomes =
             Report.Jobs.map ctx ~family:"search.exhaustive"
               (List.map job_of cases)
           in
           List.iter2
             (fun (d, (strat : Search.Game.strategy)) outcome ->
                let name = strat.Search.Game.name in
                match outcome with
                | Report.Jobs.Done
                    (Report.Jobs.List
                       [ Report.Jobs.List
                           [ Report.Jobs.Rat ratio; Report.Jobs.Int opt;
                             Report.Jobs.Int alg ];
                         Report.Jobs.Str cert; Report.Jobs.Int nodes;
                         Report.Jobs.Int transpositions;
                         Report.Jobs.Int disagreements ]) ->
                  if disagreements > 0 then
                    problems := !problems + disagreements;
                  Printf.printf
                    "%s d=%d: found ratio %s (opt %d / alg %d) nodes=%d \
                     transpositions=%d disagreements=%d cert=%s\n"
                    name d
                    (Prelude.Rat.to_string ratio)
                    opt alg nodes transpositions disagreements
                    (recheck cert);
                  let verdict = Sx.verdict ~d ~strategy_name:name ratio in
                  Printf.printf "%s d=%d: %s\n" name d verdict;
                  if String.length verdict >= 7
                  && String.sub verdict 0 7 = "EXCEEDS"
                  then incr problems;
                  (match Cert.parse cert with
                   | Ok c ->
                     emit_cert
                       (Printf.sprintf "%s-n%d-d%d" strat.Search.Game.key n d)
                       c
                   | Error _ -> ())
                | Report.Jobs.Done _ ->
                  incr problems;
                  Printf.printf "%s d=%d: malformed job result\n" name d
                | Report.Jobs.Failed f ->
                  incr problems;
                  Printf.printf "%s d=%d: FAILED: %s\n" name d
                    f.Report.Jobs.message)
             cases outcomes;
           finish_runner ctx
         end);
      if !problems = 0 then `Ok ()
      else `Error (false, Printf.sprintf "%d search problem(s)" !problems)
  in
  let strategy_arg =
    let doc =
      "Strategy under attack: fix, current, fix_balance, eager, balance, \
       or all."
    in
    Arg.(value & opt string "fix" & info [ "s"; "strategy" ] ~docv:"S" ~doc)
  in
  let budget_arg =
    let doc =
      "Search tier: $(b,exhaustive) (complete game tree, default request \
       budget 4), an integer request budget for the same tier, or \
       $(b,guided) (hill-climbing attacker for larger configurations)."
    in
    Arg.(value & opt string "exhaustive"
         & info [ "budget" ] ~docv:"TIER" ~doc)
  in
  let n_arg =
    let doc = "Number of resources (exhaustive tier supports 1..4)." in
    Arg.(value & opt int 2 & info [ "n"; "resources" ] ~docv:"N" ~doc)
  in
  let d_arg =
    let doc =
      "Deadline d.  Default: sweep d = 1 and 2 in the exhaustive tier \
       (the Table-1 rediscovery range), d = 3 in the guided tier."
    in
    Arg.(value & opt (some int) None & info [ "d"; "deadline" ] ~docv:"D" ~doc)
  in
  let per_round_arg =
    let doc = "Max requests the adversary may inject per round." in
    Arg.(value & opt int 4 & info [ "per-round" ] ~docv:"K" ~doc)
  in
  let evals_arg =
    let doc = "Guided tier: genome evaluations per restart." in
    Arg.(value & opt int 60 & info [ "evals" ] ~docv:"E" ~doc)
  in
  let restarts_arg =
    let doc = "Guided tier: independent hill-climb restarts (one job each)." in
    Arg.(value & opt int 8 & info [ "restarts" ] ~docv:"R" ~doc)
  in
  let phases_arg =
    let doc =
      "Guided tier: phase repetitions P; genomes are scored by the exact \
       per-phase rate between P and 2P repetitions."
    in
    Arg.(value & opt int 2 & info [ "phases" ] ~docv:"P" ~doc)
  in
  let emit_arg =
    let doc =
      "Write every found worst case as a committable certificate \
       ($(b,search-*.cert), rsp/1 instance embedded) under $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "emit" ] ~docv:"DIR" ~doc)
  in
  let golden_arg =
    let doc =
      "Print the exhaustive-tier snapshot table \
       (test/golden_search_quick.txt) instead of the per-strategy lines."
    in
    Arg.(value & flag & info [ "golden" ] ~doc)
  in
  let term =
    Term.(ret (const action $ strategy_arg $ budget_arg $ n_arg $ d_arg
               $ per_round_arg $ seed_arg $ evals_arg $ restarts_arg
               $ phases_arg $ emit_arg $ golden_arg $ jobs_arg
               $ cache_dir_arg $ resume_arg $ retries_arg $ metrics_fmt_arg
               $ metrics_out_arg))
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:
         "Search for worst-case instances against the deployed strategies \
          (exhaustive game tree + guided attacker / differential fuzzer).")
    term

(* ------------------------------------------------------------------ *)

let () =
  let doc =
    "Competitive online request scheduling with deadlines and two choices \
     (reproduction of Berenbrink, Riedel, Scheideler; SPAA 1999)."
  in
  let info = Cmd.info "reqsched" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; compare_cmd; exp_cmd; table1_cmd; trace_cmd; sweep_cmd;
            zoo_cmd; search_cmd; serve_cmd; cluster_cmd; load_cmd;
          ]))
